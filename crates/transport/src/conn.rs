//! The sans-io connection state machine.
//!
//! A [`Conn`] owns no socket: the transport (event loop, test harness,
//! in-memory [`crate::duplex`] pipes) moves raw bytes in and out, and the
//! `Conn` turns them into codec messages:
//!
//! ```text
//!            feed_inbound(bytes)            poll_inbound() -> &Message
//!   wire ──────────────▶ [FrameBuffer ▶ pooled ParseSession] ──────────▶ app
//!   wire ◀────────────── [pooled SerializeSession ▶ frames]  ◀────────── app
//!            poll_outbound(buf)              send(&Message)
//! ```
//!
//! Each connection checks **one** parser and **one** serializer out of its
//! [`CodecService`]s at construction and holds them for its lifetime — the
//! long-lived-checkout pattern: pool traffic happens per connection, not
//! per message, and every message is decoded/encoded with warmed,
//! allocation-free session scratch against the one shared compiled plan.
//!
//! All failure paths are typed ([`TransportError`]); hostile bytes move
//! the connection to [`ConnState::Failed`] and never panic.
//!
//! The outbound queue is **bounded** ([`Conn::outbound_cap`], default
//! [`DEFAULT_OUTBOUND_CAP`]): once the queued bytes reach the cap,
//! further [`Conn::send`]s are refused with
//! [`TransportError::Backpressure`] instead of buffering without limit —
//! a peer that stops reading can stall its own stream but can no longer
//! balloon the process's memory. The cap is *soft*: it is checked before
//! a message is encoded, so the queue can overshoot by at most one frame
//! (bounded by the tx codec's frame limit). Cooperative producers check
//! [`Conn::can_send`] first and pause their inbound side instead — the
//! gateway relay does exactly that, turning a slow downstream into a
//! closed TCP window for the upstream sender.

use protoobf_core::framing::{FrameBuffer, FrameError};
use protoobf_core::message::Message;
use protoobf_core::profile::Endpoint;
use protoobf_core::service::{CodecService, PooledParser, PooledSerializer};

use crate::error::TransportError;

/// Where a [`Conn`] is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Both directions are live.
    Open,
    /// The peer finished sending (clean EOF at a frame boundary). The
    /// outbound direction may still queue and flush messages.
    PeerClosed,
    /// [`Conn::close`] was requested and every queued outbound byte has
    /// been drained by the transport. Terminal.
    Closed,
    /// A framing or codec error killed the connection. Terminal.
    Failed,
}

/// Default outbound queue cap in bytes ([`Conn::outbound_cap`]): large
/// enough that a healthy socket never notices, small enough that one
/// stalled peer holds a bounded amount of process memory.
pub const DEFAULT_OUTBOUND_CAP: usize = 1 << 20;

/// A sans-io framed-codec connection; see the [module docs](self).
#[derive(Debug)]
pub struct Conn<'s> {
    parser: PooledParser<'s>,
    serializer: PooledSerializer<'s>,
    inbuf: FrameBuffer,
    out: Vec<u8>,
    out_start: usize,
    out_cap: usize,
    tx_max_frame: usize,
    state: ConnState,
    closing: bool,
    msgs_in: u64,
    msgs_out: u64,
    last_rx_frame: usize,
    last_tx_frame: usize,
}

impl<'s> Conn<'s> {
    /// Creates a connection that parses inbound frames with `rx`'s codec
    /// and serializes outbound messages with `tx`'s codec. The two may be
    /// the same service (symmetric protocols) or differ (request/response
    /// formats, clear/obfuscated gateway legs). Frame-size limits are
    /// inherited from each service ([`CodecService::frame_limit`]).
    pub fn new(rx: &'s CodecService, tx: &'s CodecService) -> Conn<'s> {
        Conn {
            parser: rx.parser(),
            serializer: tx.serializer(),
            inbuf: FrameBuffer::new().max_frame(rx.frame_limit()),
            out: Vec::new(),
            out_start: 0,
            out_cap: DEFAULT_OUTBOUND_CAP,
            tx_max_frame: tx.frame_limit(),
            state: ConnState::Open,
            closing: false,
            msgs_in: 0,
            msgs_out: 0,
            last_rx_frame: 0,
            last_tx_frame: 0,
        }
    }

    /// An initiator-side connection over a profile endpoint's obfuscated
    /// stacks: sends the endpoint's `tx` spec, receives its `rx` spec
    /// (asymmetric profiles give the two directions distinct codecs).
    pub fn initiator(endpoint: &'s Endpoint) -> Conn<'s> {
        Conn::new(endpoint.rx_service(), endpoint.tx_service())
    }

    /// The responder-side mirror of [`Conn::initiator`]: receives the
    /// endpoint's `tx` spec, sends its `rx` spec. Both peers build from
    /// the same profile; the role picks the orientation.
    pub fn responder(endpoint: &'s Endpoint) -> Conn<'s> {
        Conn::new(endpoint.tx_service(), endpoint.rx_service())
    }

    /// Sets the outbound queue's byte cap (builder form; default
    /// [`DEFAULT_OUTBOUND_CAP`]). Clamped to at least one byte so an
    /// empty queue always admits the next frame — a zero cap would
    /// deadlock every producer forever.
    pub fn outbound_cap(mut self, cap: usize) -> Conn<'s> {
        self.set_outbound_cap(cap);
        self
    }

    /// In-place form of [`Conn::outbound_cap`].
    pub fn set_outbound_cap(&mut self, cap: usize) {
        self.out_cap = cap.max(1);
    }

    /// True when the outbound queue is below its cap, i.e. the next
    /// [`Conn::send`] will not be refused with
    /// [`TransportError::Backpressure`]. Cooperative producers (the
    /// gateway relay) poll this before decoding more inbound work.
    pub fn can_send(&self) -> bool {
        self.outbound_len() < self.out_cap
    }

    /// Bytes currently queued outbound (not yet consumed by the
    /// transport).
    pub fn outbound_len(&self) -> usize {
        self.out.len() - self.out_start
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Messages decoded from the inbound direction so far.
    pub fn messages_in(&self) -> u64 {
        self.msgs_in
    }

    /// Messages queued on the outbound direction so far.
    pub fn messages_out(&self) -> u64 {
        self.msgs_out
    }

    /// Payload length in bytes of the most recent frame decoded by
    /// [`Conn::poll_inbound`] (0 before the first). Telemetry reads this
    /// right after a successful poll to feed the inbound frame-size
    /// histogram without re-deriving framing state.
    pub fn last_inbound_frame_len(&self) -> usize {
        self.last_rx_frame
    }

    /// Encoded wire length in bytes (length prefix included) of the most
    /// recent frame queued by [`Conn::send`] (0 before the first) — the
    /// outbound mirror of [`Conn::last_inbound_frame_len`].
    pub fn last_outbound_frame_len(&self) -> usize {
        self.last_tx_frame
    }

    /// Buffers raw transport bytes for decoding. Cheap: frames are only
    /// parsed when [`Conn::poll_inbound`] is called.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] on a terminal connection.
    pub fn feed_inbound(&mut self, chunk: &[u8]) -> Result<(), TransportError> {
        match self.state {
            ConnState::Closed | ConnState::Failed => Err(TransportError::Closed),
            _ => {
                self.inbuf.feed(chunk);
                Ok(())
            }
        }
    }

    /// Signals a clean end of the inbound byte stream (the transport saw
    /// EOF). Complete frames already buffered remain pollable; leftover
    /// partial bytes surface as [`FrameError::Truncated`] on the next
    /// [`Conn::poll_inbound`].
    pub fn feed_eof(&mut self) {
        if self.state == ConnState::Open {
            self.state = ConnState::PeerClosed;
        }
    }

    /// Decodes and returns the next complete inbound message, or `None`
    /// when no full frame is buffered. The returned message borrows the
    /// connection's parse session and is overwritten by the next poll —
    /// steady-state decoding allocates nothing.
    ///
    /// # Errors
    ///
    /// [`TransportError::Frame`] for hostile input (oversized prefix,
    /// undecodable frame, EOF inside a frame); the connection moves to
    /// [`ConnState::Failed`]. [`TransportError::Closed`] on a terminal
    /// connection.
    pub fn poll_inbound(&mut self) -> Result<Option<&Message<'s>>, TransportError> {
        if matches!(self.state, ConnState::Failed | ConnState::Closed) {
            return Err(TransportError::Closed);
        }
        let frame = match self.inbuf.peek() {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                if self.state == ConnState::PeerClosed && self.inbuf.pending() > 0 {
                    self.state = ConnState::Failed;
                    return Err(TransportError::Frame(FrameError::Truncated));
                }
                return Ok(None);
            }
            Err(e) => {
                self.state = ConnState::Failed;
                return Err(TransportError::Frame(e));
            }
        };
        let frame_len = frame.len();
        match self.parser.parse_in_place(frame) {
            Ok(_) => {
                self.inbuf.consume();
                self.msgs_in += 1;
                self.last_rx_frame = frame_len;
                Ok(Some(self.parser.message()))
            }
            Err(e) => {
                self.state = ConnState::Failed;
                Err(TransportError::Frame(FrameError::Parse(e)))
            }
        }
    }

    /// Serializes `msg` (which must be bound to the `tx` codec's graph)
    /// into the outbound queue as one length-prefixed frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::Build`] when the message does not serialize (the
    /// connection stays usable — the fault is local, not the wire's),
    /// [`TransportError::Frame`] ([`FrameError::TooLarge`]) when the frame
    /// exceeds the tx limit, [`TransportError::Backpressure`] when the
    /// outbound queue is at its cap (also non-fatal: drain and retry),
    /// [`TransportError::Closed`] after [`Conn::close`] or on a terminal
    /// connection.
    pub fn send(&mut self, msg: &Message<'_>) -> Result<(), TransportError> {
        if self.closing || matches!(self.state, ConnState::Failed | ConnState::Closed) {
            return Err(TransportError::Closed);
        }
        if !self.can_send() {
            return Err(TransportError::Backpressure {
                queued: self.outbound_len(),
                cap: self.out_cap,
            });
        }
        let before = self.out.len();
        match protoobf_core::framing::append_frame(
            &mut self.serializer,
            msg,
            &mut self.out,
            self.tx_max_frame,
        ) {
            Ok(()) => {
                self.msgs_out += 1;
                self.last_tx_frame = self.out.len() - before;
                Ok(())
            }
            // A build failure is the local caller's fault, not the wire's:
            // the connection stays usable.
            Err(FrameError::Build(e)) => Err(TransportError::Build(e)),
            Err(e) => Err(TransportError::Frame(e)),
        }
    }

    /// The encoded bytes waiting for the transport to write.
    pub fn outbound(&self) -> &[u8] {
        &self.out[self.out_start..]
    }

    /// True when encoded bytes are waiting to be written.
    pub fn has_outbound(&self) -> bool {
        self.out_start < self.out.len()
    }

    /// Marks `n` outbound bytes as written by the transport (a partial
    /// write advances a cursor; the buffer compacts itself).
    pub fn consume_outbound(&mut self, n: usize) {
        self.out_start = (self.out_start + n).min(self.out.len());
        if self.out_start == self.out.len() {
            self.out.clear();
            self.out_start = 0;
        } else if self.out_start >= self.out.len() - self.out_start {
            self.out.copy_within(self.out_start.., 0);
            self.out.truncate(self.out.len() - self.out_start);
            self.out_start = 0;
        }
        self.finish_close_if_drained();
    }

    /// Copies up to `buf.len()` pending outbound bytes into `buf` and
    /// consumes them, returning how many were copied. Zero means the
    /// outbound direction is idle.
    pub fn poll_outbound(&mut self, buf: &mut [u8]) -> usize {
        let pending = self.outbound();
        let n = pending.len().min(buf.len());
        buf[..n].copy_from_slice(&pending[..n]);
        self.consume_outbound(n);
        n
    }

    /// Requests a clean close of the outbound direction: no further
    /// [`Conn::send`]s are accepted, and once the transport drains the
    /// queued bytes the connection reaches [`ConnState::Closed`].
    pub fn close(&mut self) {
        self.closing = true;
        self.finish_close_if_drained();
    }

    fn finish_close_if_drained(&mut self) {
        if self.closing && !self.has_outbound() && self.state != ConnState::Failed {
            self.state = ConnState::Closed;
        }
    }
}

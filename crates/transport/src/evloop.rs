//! The non-blocking event loop: thread-per-core workers over `std::net`.
//!
//! The build targets environments without an async runtime, so readiness
//! is discovered by scanning: every socket is switched to non-blocking
//! mode and each worker repeatedly (1) drains its listener's accept queue
//! and (2) calls [`Session::drive`] on every session it owns. A drive that
//! hits `WouldBlock` simply reports no progress; when a whole scan makes
//! none, the worker backs off exponentially (yield → short sleeps capped
//! in the low milliseconds), so an idle loop costs microwatts while a busy
//! one never sleeps.
//!
//! Workers share nothing but the listener and the [`Metrics`]: each
//! accepted connection lives on the worker that accepted it, so there is
//! no cross-thread session locking — the codec state they share (the
//! compiled plan inside each [`protoobf_core::CodecService`]) is immutable
//! by construction.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crate::error::TransportError;
use crate::metrics::Metrics;

/// What one [`Session::drive`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drive {
    /// Bytes or messages moved; scan again immediately.
    Progress,
    /// Nothing to do right now (all reads/writes would block).
    Idle,
    /// The session finished cleanly and can be dropped.
    Done,
}

/// One unit of work owned by an event-loop worker: typically a
/// [`crate::gateway::Relay`] or [`crate::gateway::Echo`], but any
/// state machine that can be pumped without blocking fits.
pub trait Session {
    /// Pumps the session once: read what's readable, decode/encode what's
    /// complete, write what's writable — never blocking.
    ///
    /// # Errors
    ///
    /// A [`TransportError`] tears the session down (the loop counts it in
    /// [`Metrics::failed`] and drops it, closing its sockets).
    fn drive(&mut self) -> Result<Drive, TransportError>;
}

/// Event-loop sizing and lifecycle knobs.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Worker threads (acceptor + driver each). Defaults to the number of
    /// available CPUs.
    pub workers: usize,
    /// Stop accepting after this many connections in total and return once
    /// the last session drains — bounded runs for tests and smoke jobs.
    /// `None` runs until `shutdown` is raised.
    pub accept_limit: Option<u64>,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            accept_limit: None,
        }
    }
}

/// Runs the event loop until `shutdown` is raised (live sessions are
/// dropped immediately, closing their sockets) or `accept_limit` is
/// reached and every session drains gracefully. `factory` is called once
/// per accepted connection — on the accepting worker's thread — to build
/// its session; a factory error closes the connection and counts an
/// accept error.
///
/// # Errors
///
/// Only listener-level failures (clone/configure) abort the loop; per-
/// connection errors are absorbed into `metrics`.
pub fn serve<S, F>(
    listener: TcpListener,
    cfg: &LoopConfig,
    shutdown: &AtomicBool,
    metrics: &Metrics,
    factory: F,
) -> io::Result<()>
where
    S: Session,
    F: Fn(TcpStream, SocketAddr) -> Result<S, TransportError> + Sync,
{
    listener.set_nonblocking(true)?;
    let workers = cfg.workers.max(1);
    let counters = AcceptCounters::default();
    let factory = &factory;
    let counters = &counters;
    // Clone every worker's listener handle *before* spawning: a clone
    // failure mid-spawn would otherwise leave already-running workers
    // looping (shutdown never raised) while `?` waits on the scope join —
    // a hang instead of an error.
    let mut listeners = Vec::with_capacity(workers);
    for _ in 0..workers {
        listeners.push(listener.try_clone()?);
    }
    drop(listener);
    std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .map(|listener| {
                let cfg = cfg.clone();
                scope.spawn(move || worker(listener, &cfg, shutdown, metrics, counters, factory))
            })
            .collect();
        for h in handles {
            // Worker panics propagate: a crashed worker is a bug, not a
            // recoverable condition.
            h.join().expect("event-loop worker panicked");
        }
    });
    Ok(())
}

/// Shared accept accounting. `reserved` bounds admissions (slots are taken
/// *before* `accept` so concurrent workers cannot collectively over-admit
/// and released when the accept yields nothing); `admitted` counts
/// completed accepts and drives the workers' exit check — a transient
/// reservation must not make sibling workers conclude the limit was
/// reached and retire early.
#[derive(Debug, Default)]
struct AcceptCounters {
    reserved: AtomicU64,
    admitted: AtomicU64,
}

fn worker<S, F>(
    listener: TcpListener,
    cfg: &LoopConfig,
    shutdown: &AtomicBool,
    metrics: &Metrics,
    counters: &AcceptCounters,
    factory: &F,
) where
    S: Session,
    F: Fn(TcpStream, SocketAddr) -> Result<S, TransportError> + Sync,
{
    let mut sessions: Vec<S> = Vec::new();
    let mut idle_scans: u32 = 0;
    loop {
        let stop = shutdown.load(Ordering::Relaxed);
        if stop && !sessions.is_empty() {
            // Shutdown is immediate: drop every live session (closing its
            // sockets) rather than waiting out idle peers that may never
            // send or hang up — otherwise one lingering connection keeps
            // serve() from ever returning. Bounded runs that want a
            // graceful drain use `accept_limit` instead.
            Metrics::add(&metrics.closed, sessions.len() as u64);
            sessions.clear();
        }
        let limit_reached = cfg
            .accept_limit
            .is_some_and(|limit| counters.admitted.load(Ordering::Relaxed) >= limit);
        if (stop || limit_reached) && sessions.is_empty() {
            return;
        }
        let mut progress = false;

        // Drain the accept queue (bounded burst so one worker cannot hoard
        // every pending connection while its siblings starve).
        if !stop && !limit_reached {
            let release = || {
                if cfg.accept_limit.is_some() {
                    counters.reserved.fetch_sub(1, Ordering::Relaxed);
                }
            };
            for _ in 0..32 {
                if let Some(limit) = cfg.accept_limit {
                    let reservation =
                        counters.reserved.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                            (n < limit).then_some(n + 1)
                        });
                    if reservation.is_err() {
                        break;
                    }
                }
                match listener.accept() {
                    Ok((stream, peer)) => {
                        counters.admitted.fetch_add(1, Ordering::Relaxed);
                        progress = true;
                        match configure(&stream)
                            .map_err(TransportError::Io)
                            .and_then(|()| factory(stream, peer))
                        {
                            Ok(session) => {
                                Metrics::add(&metrics.accepted, 1);
                                sessions.push(session);
                            }
                            Err(_) => Metrics::add(&metrics.accept_errors, 1),
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        release();
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => release(),
                    // Transient accept failures (peer reset mid-handshake,
                    // fd pressure): count and keep serving.
                    Err(_) => {
                        release();
                        Metrics::add(&metrics.accept_errors, 1);
                        break;
                    }
                }
            }
        }

        sessions.retain_mut(|session| match session.drive() {
            Ok(Drive::Progress) => {
                progress = true;
                true
            }
            Ok(Drive::Idle) => true,
            Ok(Drive::Done) => {
                progress = true;
                Metrics::add(&metrics.closed, 1);
                false
            }
            Err(_) => {
                progress = true;
                Metrics::add(&metrics.failed, 1);
                false
            }
        });

        if progress {
            idle_scans = 0;
        } else {
            backoff(idle_scans, metrics);
            idle_scans = idle_scans.saturating_add(1);
        }
    }
}

fn configure(stream: &TcpStream) -> io::Result<()> {
    stream.set_nonblocking(true)?;
    // Latency over batching: gateway frames are message-sized.
    let _ = stream.set_nodelay(true);
    Ok(())
}

/// Idle strategy: stay hot for a few dozen scans (another thread likely
/// holds the bytes we're waiting for), then sleep exponentially up to
/// ~1.6 ms — long enough to be cheap, short enough that shutdown and new
/// connections are picked up promptly. Naps (count and slept time) are
/// recorded in [`Metrics`].
fn backoff(idle_scans: u32, metrics: &Metrics) {
    match backoff_duration(idle_scans) {
        None => std::thread::yield_now(),
        Some(nap) => {
            Metrics::add(&metrics.idle_naps, 1);
            Metrics::add(&metrics.idle_nap_micros, nap.as_micros() as u64);
            std::thread::sleep(nap);
        }
    }
}

/// The backoff envelope, as a pure function of the idle-scan counter:
/// `None` (spin-yield) for the first 32 scans, then 50 µs doubling every
/// 32 further scans up to a hard 1.6 ms cap. The exponent is clamped
/// **before** the shift (`min(5)`, so the shifted value is at most
/// `50 << 5`), which makes the envelope safe for every `u32` input — an
/// idle-scan counter that saturates at `u32::MAX` still naps 1.6 ms, it
/// can never shift past the cap or overflow. Pinned by `backoff_envelope`
/// below.
fn backoff_duration(idle_scans: u32) -> Option<Duration> {
    if idle_scans < 32 {
        return None;
    }
    let exp = ((idle_scans - 32) / 32).min(5);
    Some(Duration::from_micros(50u64 << exp))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 50 µs .. 1.6 ms envelope, pinned across the whole `u32` domain
    /// (a counter overflow/saturation can never escape the cap).
    #[test]
    fn backoff_envelope() {
        // Hot phase: pure yields, no naps.
        for scans in 0..32 {
            assert_eq!(backoff_duration(scans), None, "scan {scans} must spin");
        }
        // First nap tier and the doubling schedule.
        assert_eq!(backoff_duration(32), Some(Duration::from_micros(50)));
        assert_eq!(backoff_duration(63), Some(Duration::from_micros(50)));
        assert_eq!(backoff_duration(64), Some(Duration::from_micros(100)));
        assert_eq!(backoff_duration(96), Some(Duration::from_micros(200)));
        assert_eq!(backoff_duration(128), Some(Duration::from_micros(400)));
        assert_eq!(backoff_duration(160), Some(Duration::from_micros(800)));
        // Cap tier: reached at 192 scans and held forever after.
        assert_eq!(backoff_duration(192), Some(Duration::from_micros(1600)));
        for scans in [193, 1 << 16, 1 << 24, u32::MAX - 1, u32::MAX] {
            let nap = backoff_duration(scans).expect("idle workers nap");
            assert_eq!(nap, Duration::from_micros(1600), "scan {scans} escaped the cap");
        }
        // Monotone within the envelope: longer idling never naps shorter.
        let mut last = Duration::ZERO;
        for scans in 32..512 {
            let nap = backoff_duration(scans).unwrap();
            assert!(nap >= last, "nap shrank at scan {scans}");
            assert!((50..=1600).contains(&(nap.as_micros() as u64)));
            last = nap;
        }
    }

    /// Worker naps are visible in the metrics (count and slept micros).
    #[test]
    fn backoff_records_naps_in_metrics() {
        let metrics = Metrics::new();
        backoff(0, &metrics); // yield: not a nap
        backoff(32, &metrics); // 50 µs
        backoff(500, &metrics); // capped 1.6 ms
        let snap = metrics.snapshot();
        assert_eq!(snap.idle_naps, 2);
        assert_eq!(snap.idle_nap_micros, 50 + 1600);
    }
}

//! The non-blocking event loop: thread-per-core workers over `std::net`,
//! with **kernel readiness** on Linux and a portable scan fallback.
//!
//! Workers share nothing but the listener and the [`Metrics`]: each
//! accepted connection lives on the worker that accepted it, so there is
//! no cross-thread session locking — the codec state sessions share (the
//! compiled plan inside each [`protoobf_core::CodecService`]) is
//! immutable by construction.
//!
//! ## Readiness backends
//!
//! On targets with the raw-syscall shim ([`crate::sys`], Linux
//! x86-64/aarch64 — no libc) each worker owns an epoll instance:
//! connection sockets are registered **edge-triggered** when the session
//! is accepted (the session reports them via [`Session::sockets`]),
//! sessions are re-armed by simply going back to `epoll_wait` after a
//! drive hits `WouldBlock`, and deregistered when they finish or fail.
//! Discovering work is then O(ready), not O(connections): ten thousand
//! quiet flows cost one sleeping syscall, and a wake services exactly
//! the sessions the kernel named. The listener is registered
//! level-triggered so a capped accept burst (see below) resumes without
//! a new edge.
//!
//! The portable fallback — selected at **compile time** on targets
//! without the shim, or at run time by setting `PROTOOBF_EVLOOP=scan`
//! (how the test suite covers both paths on one machine) — discovers
//! work by scanning: every socket is non-blocking and each worker
//! repeatedly calls [`Session::drive`] on every session it owns, backing
//! off exponentially (yield → 50 µs … 1.6 ms naps) when a whole scan
//! makes no progress. That is O(n) per quiet connection and adds up to a
//! nap of latency — fine for hundreds of connections, the reason the
//! epoll path exists for thousands.
//!
//! Both backends cap accepts per wake ([`LoopConfig::accept_burst`]) so
//! a continuous stream of new connections cannot starve established
//! sessions, and both record how long each wake spent servicing ready
//! sessions into [`Metrics::wake_latency`] (p50/p95/p99 visible in the
//! snapshot).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crate::error::TransportError;
use crate::metrics::{peer_token, EventKind, Metrics};
use crate::sys;

/// What one [`Session::drive`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drive {
    /// Bytes or messages moved; scan again immediately.
    Progress,
    /// Nothing to do right now (all reads/writes would block).
    Idle,
    /// The session finished cleanly and can be dropped.
    Done,
}

/// One unit of work owned by an event-loop worker: typically a
/// [`crate::gateway::Relay`] or [`crate::gateway::Echo`], but any
/// state machine that can be pumped without blocking fits.
pub trait Session {
    /// Pumps the session once: read what's readable, decode/encode what's
    /// complete, write what's writable — never blocking.
    ///
    /// # Errors
    ///
    /// A [`TransportError`] tears the session down (the loop counts it in
    /// [`Metrics::failed`] and drops it, closing its sockets).
    fn drive(&mut self) -> Result<Drive, TransportError>;

    /// The sockets whose readiness gates this session's progress, for
    /// kernel registration on the epoll path (edge-triggered, read and
    /// write interest, registered at accept and deregistered at
    /// close/fail). The default reports none, which makes the epoll
    /// worker treat the session as always-ready — correct but O(n), i.e.
    /// scan semantics for that one session.
    fn sockets<'a>(&'a self, out: &mut Vec<&'a TcpStream>) {
        let _ = out;
    }

    /// An opaque identity for this session's flight-recorder events —
    /// conventionally [`peer_token`] of the accepted peer, so `/events`
    /// lines correlate with client addresses. The default (0) renders as
    /// an anonymous token; lifecycle events are still recorded.
    fn token(&self) -> u64 {
        0
    }
}

/// Event-loop sizing and lifecycle knobs.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Worker threads (acceptor + driver each). Defaults to the number of
    /// available CPUs.
    pub workers: usize,
    /// Stop accepting after this many connections in total and return once
    /// the last session drains — bounded runs for tests and smoke jobs.
    /// `None` runs until `shutdown` is raised.
    pub accept_limit: Option<u64>,
    /// Most connections a worker accepts per wake before it services its
    /// established sessions again (default
    /// [`LoopConfig::DEFAULT_ACCEPT_BURST`]). A continuous accept flood
    /// therefore delays established traffic by at most one bounded burst,
    /// never a whole backlog. Clamped to at least 1.
    pub accept_burst: usize,
}

impl LoopConfig {
    /// Default [`LoopConfig::accept_burst`].
    pub const DEFAULT_ACCEPT_BURST: usize = 32;
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            accept_limit: None,
            accept_burst: LoopConfig::DEFAULT_ACCEPT_BURST,
        }
    }
}

/// Runs the event loop until `shutdown` is raised (live sessions are
/// dropped immediately, closing their sockets) or `accept_limit` is
/// reached and every session drains gracefully. `factory` is called once
/// per accepted connection — on the accepting worker's thread — to build
/// its session; a factory error closes the connection and counts an
/// accept error.
///
/// Workers use kernel readiness (epoll via [`crate::sys`]) where the
/// build supports it, unless `PROTOOBF_EVLOOP=scan` forces the portable
/// readiness-scan fallback; see the [module docs](self).
///
/// # Errors
///
/// Only listener-level failures (clone/configure) abort the loop; per-
/// connection errors are absorbed into `metrics`.
pub fn serve<S, F>(
    listener: TcpListener,
    cfg: &LoopConfig,
    shutdown: &AtomicBool,
    metrics: &Metrics,
    factory: F,
) -> io::Result<()>
where
    S: Session,
    F: Fn(TcpStream, SocketAddr) -> Result<S, TransportError> + Sync,
{
    listener.set_nonblocking(true)?;
    let workers = cfg.workers.max(1);
    let counters = AcceptCounters::default();
    let factory = &factory;
    let counters = &counters;
    // Backend choice: compile-time (sys::supported() is const-false off
    // Linux) plus the runtime escape hatch the tests use to cover the
    // fallback on epoll-capable hosts.
    let use_epoll =
        sys::supported() && !matches!(std::env::var("PROTOOBF_EVLOOP").as_deref(), Ok("scan"));
    // Clone every worker's listener handle *before* spawning: a clone
    // failure mid-spawn would otherwise leave already-running workers
    // looping (shutdown never raised) while `?` waits on the scope join —
    // a hang instead of an error.
    let mut listeners = Vec::with_capacity(workers);
    for _ in 0..workers {
        listeners.push(listener.try_clone()?);
    }
    drop(listener);
    std::thread::scope(|scope| {
        let handles: Vec<_> = listeners
            .into_iter()
            .map(|listener| {
                let cfg = cfg.clone();
                scope.spawn(move || {
                    worker(listener, &cfg, shutdown, metrics, counters, factory, use_epoll)
                })
            })
            .collect();
        for h in handles {
            // Worker panics propagate: a crashed worker is a bug, not a
            // recoverable condition.
            h.join().expect("event-loop worker panicked");
        }
    });
    Ok(())
}

/// Shared accept accounting. `reserved` bounds admissions (slots are taken
/// *before* `accept` so concurrent workers cannot collectively over-admit
/// and released when the accept yields nothing); `admitted` counts
/// completed accepts and drives the workers' exit check — a transient
/// reservation must not make sibling workers conclude the limit was
/// reached and retire early.
#[derive(Debug, Default)]
struct AcceptCounters {
    reserved: AtomicU64,
    admitted: AtomicU64,
}

fn worker<S, F>(
    listener: TcpListener,
    cfg: &LoopConfig,
    shutdown: &AtomicBool,
    metrics: &Metrics,
    counters: &AcceptCounters,
    factory: &F,
    use_epoll: bool,
) where
    S: Session,
    F: Fn(TcpStream, SocketAddr) -> Result<S, TransportError> + Sync,
{
    #[cfg(unix)]
    if use_epoll {
        // Setup failures (fd exhaustion, odd kernels) fall back to the
        // scan loop instead of taking the worker down.
        if epoll_worker(&listener, cfg, shutdown, metrics, counters, factory).is_ok() {
            return;
        }
    }
    #[cfg(not(unix))]
    let _ = use_epoll;
    scan_worker(listener, cfg, shutdown, metrics, counters, factory);
}

/// What one bounded accept pass did.
struct AcceptPass {
    /// At least one connection was admitted (or definitively errored).
    progress: bool,
    /// The kernel's queue emptied (`WouldBlock`): no accepts are pending,
    /// so the epoll worker may park until the listener's next event.
    drained: bool,
}

/// Accepts up to `cfg.accept_burst` connections, building a session for
/// each and handing it to `sink`. Honors the accept-limit reservation
/// protocol; the caller must already have checked shutdown/limit.
fn accept_pass<S, F>(
    listener: &TcpListener,
    cfg: &LoopConfig,
    metrics: &Metrics,
    counters: &AcceptCounters,
    factory: &F,
    mut sink: impl FnMut(S),
) -> AcceptPass
where
    S: Session,
    F: Fn(TcpStream, SocketAddr) -> Result<S, TransportError> + Sync,
{
    let mut pass = AcceptPass { progress: false, drained: false };
    let release = || {
        if cfg.accept_limit.is_some() {
            counters.reserved.fetch_sub(1, Ordering::Relaxed);
        }
    };
    // Bounded burst: one worker can neither hoard every pending
    // connection while its siblings starve, nor let a connect flood
    // starve its own established sessions.
    for _ in 0..cfg.accept_burst.max(1) {
        if let Some(limit) = cfg.accept_limit {
            let reservation =
                counters.reserved.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < limit).then_some(n + 1)
                });
            if reservation.is_err() {
                break;
            }
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                counters.admitted.fetch_add(1, Ordering::Relaxed);
                pass.progress = true;
                match configure(&stream)
                    .map_err(TransportError::Io)
                    .and_then(|()| factory(stream, peer))
                {
                    Ok(session) => {
                        Metrics::add(&metrics.accepted, 1);
                        metrics.recorder.record(EventKind::Accept, session.token(), 0);
                        sink(session);
                    }
                    Err(e) => {
                        Metrics::add(&metrics.accept_errors, 1);
                        metrics.recorder.record(
                            EventKind::AcceptError,
                            peer_token(&peer),
                            e.code(),
                        );
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                release();
                pass.drained = true;
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => release(),
            // Transient accept failures (peer reset mid-handshake,
            // fd pressure): count and keep serving.
            Err(_) => {
                release();
                Metrics::add(&metrics.accept_errors, 1);
                metrics.recorder.record(EventKind::AcceptError, 0, 0);
                break;
            }
        }
    }
    pass
}

fn limit_reached(cfg: &LoopConfig, counters: &AcceptCounters) -> bool {
    cfg.accept_limit.is_some_and(|limit| counters.admitted.load(Ordering::Relaxed) >= limit)
}

// ---------------------------------------------------------------------
// Epoll backend: O(ready) wakes via the raw-syscall shim.
// ---------------------------------------------------------------------

/// Token of the worker's listener in its epoll interest list; session
/// tokens are their slot index, which can never reach this.
#[cfg(unix)]
const LISTENER_TOKEN: u64 = u64::MAX;

/// Runs one worker on kernel readiness. Returns `Err` only for *setup*
/// failures (epoll instance / listener registration) — the caller then
/// falls back to the scan loop; once serving, per-connection errors are
/// absorbed into `metrics` exactly like the scan worker.
#[cfg(unix)]
fn epoll_worker<S, F>(
    listener: &TcpListener,
    cfg: &LoopConfig,
    shutdown: &AtomicBool,
    metrics: &Metrics,
    counters: &AcceptCounters,
    factory: &F,
) -> io::Result<()>
where
    S: Session,
    F: Fn(TcpStream, SocketAddr) -> Result<S, TransportError> + Sync,
{
    use std::os::fd::AsRawFd;

    let epoll = sys::Epoll::new()?;
    // Level-triggered listener: a burst capped short of draining the
    // backlog re-reports immediately, so established sessions get their
    // turn without new connections waiting for a fresh edge.
    epoll.add(listener.as_raw_fd(), sys::flags::IN, LISTENER_TOKEN)?;

    let mut slots: Vec<Option<S>> = Vec::new();
    let mut free_slots: Vec<usize> = Vec::new();
    let mut is_ready: Vec<bool> = Vec::new();
    let mut ready: Vec<usize> = Vec::new();
    let mut next_ready: Vec<usize> = Vec::new();
    let mut live = 0usize;
    // Assume a pending backlog at startup: connections may have queued
    // before our interest registration.
    let mut accept_ready = true;
    let mut events = vec![sys::EpollEvent::zeroed(); 256];
    let mut fd_scratch: Vec<i32> = Vec::new();

    // Deregisters a finished session's sockets and frees its slot.
    let retire = |slot: usize,
                  slots: &mut Vec<Option<S>>,
                  free_slots: &mut Vec<usize>,
                  is_ready: &mut [bool],
                  epoll: &sys::Epoll,
                  fd_scratch: &mut Vec<i32>| {
        if let Some(session) = slots[slot].take() {
            collect_fds(&session, fd_scratch);
            for &fd in fd_scratch.iter() {
                let _ = epoll.del(fd);
            }
            drop(session);
        }
        is_ready[slot] = false;
        free_slots.push(slot);
    };

    loop {
        let stop = shutdown.load(Ordering::Relaxed);
        if stop && live > 0 {
            // Shutdown is immediate: drop every live session (closing its
            // sockets) rather than waiting out idle peers that may never
            // send or hang up. Bounded runs that want a graceful drain
            // use `accept_limit` instead.
            Metrics::add(&metrics.closed, live as u64);
            for slot in 0..slots.len() {
                if let Some(session) = slots[slot].as_ref() {
                    metrics.recorder.record(EventKind::Shutdown, session.token(), 0);
                    retire(
                        slot,
                        &mut slots,
                        &mut free_slots,
                        &mut is_ready,
                        &epoll,
                        &mut fd_scratch,
                    );
                }
            }
            ready.clear();
            live = 0;
        }
        let limited = limit_reached(cfg, counters);
        if (stop || limited) && live == 0 {
            return Ok(());
        }

        if !stop && !limited && accept_ready {
            let pass = accept_pass(listener, cfg, metrics, counters, factory, |session| {
                let slot = match free_slots.pop() {
                    Some(slot) => slot,
                    None => {
                        slots.push(None);
                        is_ready.push(false);
                        slots.len() - 1
                    }
                };
                collect_fds(&session, &mut fd_scratch);
                let mut registered = Vec::new();
                let mut ok = true;
                for &fd in fd_scratch.iter() {
                    let interest =
                        sys::flags::IN | sys::flags::OUT | sys::flags::RDHUP | sys::flags::ET;
                    match epoll.add(fd, interest, slot as u64) {
                        Ok(()) => registered.push(fd),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    slots[slot] = Some(session);
                    live += 1;
                    // Drive immediately: bytes may already be buffered
                    // and the registration edge is consumed by the add.
                    if !is_ready[slot] {
                        is_ready[slot] = true;
                        ready.push(slot);
                    }
                } else {
                    // Registration failed (fd pressure): surface as an
                    // accept-time error, like a factory failure.
                    for fd in registered {
                        let _ = epoll.del(fd);
                    }
                    free_slots.push(slot);
                    Metrics::add(&metrics.accept_errors, 1);
                    // The accepted counter already ticked; keep it — the
                    // connection *was* accepted, then failed setup.
                }
            });
            if pass.drained {
                accept_ready = false;
            }
        }

        // Park in the kernel only when nothing is actionable; a pending
        // ready set or an undrained backlog polls instead. The 10 ms cap
        // bounds how stale the shutdown/limit check can get.
        let timeout = if !ready.is_empty() || (accept_ready && !stop && !limited) {
            Some(Duration::ZERO)
        } else {
            Some(Duration::from_millis(10))
        };
        // Wait failures are not setup failures; treat one as a timeout
        // tick rather than abandoning live sessions to a restart.
        let n = epoll.wait(&mut events, timeout).unwrap_or_default();
        for ev in events.iter().take(n) {
            let token = ev.token();
            if token == LISTENER_TOKEN {
                accept_ready = true;
            } else {
                let slot = token as usize;
                if slot < slots.len() && slots[slot].is_some() && !is_ready[slot] {
                    is_ready[slot] = true;
                    ready.push(slot);
                }
            }
        }

        // Service this wake's ready set: one drive per session per pass
        // (fairness — a firehose session cannot monopolize the worker),
        // sessions that made progress stay ready for the next pass.
        if !ready.is_empty() {
            let t0 = std::time::Instant::now();
            next_ready.clear();
            for &slot in &ready {
                let Some(session) = slots[slot].as_mut() else {
                    is_ready[slot] = false;
                    continue;
                };
                match session.drive() {
                    Ok(Drive::Progress) => next_ready.push(slot),
                    Ok(Drive::Idle) => is_ready[slot] = false,
                    Ok(Drive::Done) => {
                        Metrics::add(&metrics.closed, 1);
                        metrics.recorder.record(EventKind::Close, session.token(), 0);
                        retire(
                            slot,
                            &mut slots,
                            &mut free_slots,
                            &mut is_ready,
                            &epoll,
                            &mut fd_scratch,
                        );
                        live -= 1;
                    }
                    Err(e) => {
                        Metrics::add(&metrics.failed, 1);
                        metrics.recorder.record(EventKind::Fail, session.token(), e.code());
                        retire(
                            slot,
                            &mut slots,
                            &mut free_slots,
                            &mut is_ready,
                            &epoll,
                            &mut fd_scratch,
                        );
                        live -= 1;
                    }
                }
            }
            std::mem::swap(&mut ready, &mut next_ready);
            metrics.wake_latency.record(t0.elapsed().as_micros() as u64);
        }
    }
}

/// Extracts the raw fds a session's sockets expose (epoll registration
/// currency). Scratch-reusing so the accept path does not allocate per
/// connection beyond the first.
#[cfg(unix)]
fn collect_fds<S: Session>(session: &S, out: &mut Vec<i32>) {
    use std::os::fd::AsRawFd;
    let mut streams = Vec::new();
    session.sockets(&mut streams);
    out.clear();
    out.extend(streams.iter().map(|s| s.as_raw_fd()));
}

// ---------------------------------------------------------------------
// Portable fallback: readiness by scanning with exponential backoff.
// ---------------------------------------------------------------------

fn scan_worker<S, F>(
    listener: TcpListener,
    cfg: &LoopConfig,
    shutdown: &AtomicBool,
    metrics: &Metrics,
    counters: &AcceptCounters,
    factory: &F,
) where
    S: Session,
    F: Fn(TcpStream, SocketAddr) -> Result<S, TransportError> + Sync,
{
    let mut sessions: Vec<S> = Vec::new();
    let mut idle_scans: u32 = 0;
    loop {
        let stop = shutdown.load(Ordering::Relaxed);
        if stop && !sessions.is_empty() {
            // Shutdown is immediate: drop every live session (closing its
            // sockets) rather than waiting out idle peers that may never
            // send or hang up — otherwise one lingering connection keeps
            // serve() from ever returning. Bounded runs that want a
            // graceful drain use `accept_limit` instead.
            Metrics::add(&metrics.closed, sessions.len() as u64);
            for session in &sessions {
                metrics.recorder.record(EventKind::Shutdown, session.token(), 0);
            }
            sessions.clear();
        }
        let limited = limit_reached(cfg, counters);
        if (stop || limited) && sessions.is_empty() {
            return;
        }
        let t0 = std::time::Instant::now();
        let mut progress = false;

        if !stop && !limited {
            let pass = accept_pass(&listener, cfg, metrics, counters, factory, |session| {
                sessions.push(session);
            });
            progress |= pass.progress;
        }

        sessions.retain_mut(|session| match session.drive() {
            Ok(Drive::Progress) => {
                progress = true;
                true
            }
            Ok(Drive::Idle) => true,
            Ok(Drive::Done) => {
                progress = true;
                Metrics::add(&metrics.closed, 1);
                metrics.recorder.record(EventKind::Close, session.token(), 0);
                false
            }
            Err(e) => {
                progress = true;
                Metrics::add(&metrics.failed, 1);
                metrics.recorder.record(EventKind::Fail, session.token(), e.code());
                false
            }
        });

        if progress {
            metrics.wake_latency.record(t0.elapsed().as_micros() as u64);
            idle_scans = 0;
        } else {
            backoff(idle_scans, metrics);
            idle_scans = idle_scans.saturating_add(1);
        }
    }
}

fn configure(stream: &TcpStream) -> io::Result<()> {
    stream.set_nonblocking(true)?;
    // Latency over batching: gateway frames are message-sized.
    let _ = stream.set_nodelay(true);
    Ok(())
}

/// Idle strategy of the scan fallback: stay hot for a few dozen scans
/// (another thread likely holds the bytes we're waiting for), then sleep
/// exponentially up to ~1.6 ms — long enough to be cheap, short enough
/// that shutdown and new connections are picked up promptly. Naps (count
/// and slept time) are recorded in [`Metrics`]. The epoll path never
/// calls this: it parks in `epoll_wait` instead.
fn backoff(idle_scans: u32, metrics: &Metrics) {
    match backoff_duration(idle_scans) {
        None => std::thread::yield_now(),
        Some(nap) => {
            Metrics::add(&metrics.idle_naps, 1);
            Metrics::add(&metrics.idle_nap_micros, nap.as_micros() as u64);
            std::thread::sleep(nap);
        }
    }
}

/// The backoff envelope, as a pure function of the idle-scan counter:
/// `None` (spin-yield) for the first 32 scans, then 50 µs doubling every
/// 32 further scans up to a hard 1.6 ms cap. The exponent is clamped
/// **before** the shift (`min(5)`, so the shifted value is at most
/// `50 << 5`), which makes the envelope safe for every `u32` input — an
/// idle-scan counter that saturates at `u32::MAX` still naps 1.6 ms, it
/// can never shift past the cap or overflow. Pinned by `backoff_envelope`
/// below.
fn backoff_duration(idle_scans: u32) -> Option<Duration> {
    if idle_scans < 32 {
        return None;
    }
    let exp = ((idle_scans - 32) / 32).min(5);
    Some(Duration::from_micros(50u64 << exp))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 50 µs .. 1.6 ms envelope, pinned across the whole `u32` domain
    /// (a counter overflow/saturation can never escape the cap).
    #[test]
    fn backoff_envelope() {
        // Hot phase: pure yields, no naps.
        for scans in 0..32 {
            assert_eq!(backoff_duration(scans), None, "scan {scans} must spin");
        }
        // First nap tier and the doubling schedule.
        assert_eq!(backoff_duration(32), Some(Duration::from_micros(50)));
        assert_eq!(backoff_duration(63), Some(Duration::from_micros(50)));
        assert_eq!(backoff_duration(64), Some(Duration::from_micros(100)));
        assert_eq!(backoff_duration(96), Some(Duration::from_micros(200)));
        assert_eq!(backoff_duration(128), Some(Duration::from_micros(400)));
        assert_eq!(backoff_duration(160), Some(Duration::from_micros(800)));
        // Cap tier: reached at 192 scans and held forever after.
        assert_eq!(backoff_duration(192), Some(Duration::from_micros(1600)));
        for scans in [193, 1 << 16, 1 << 24, u32::MAX - 1, u32::MAX] {
            let nap = backoff_duration(scans).expect("idle workers nap");
            assert_eq!(nap, Duration::from_micros(1600), "scan {scans} escaped the cap");
        }
        // Monotone within the envelope: longer idling never naps shorter.
        let mut last = Duration::ZERO;
        for scans in 32..512 {
            let nap = backoff_duration(scans).unwrap();
            assert!(nap >= last, "nap shrank at scan {scans}");
            assert!((50..=1600).contains(&(nap.as_micros() as u64)));
            last = nap;
        }
    }

    /// Worker naps are visible in the metrics (count and slept micros).
    #[test]
    fn backoff_records_naps_in_metrics() {
        let metrics = Metrics::new();
        backoff(0, &metrics); // yield: not a nap
        backoff(32, &metrics); // 50 µs
        backoff(500, &metrics); // capped 1.6 ms
        let snap = metrics.snapshot();
        assert_eq!(snap.idle_naps, 2);
        assert_eq!(snap.idle_nap_micros, 50 + 1600);
    }
}

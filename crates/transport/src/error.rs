//! The transport layer's typed error: every way a connection can go wrong,
//! without a panic path.

use std::io;

use protoobf_core::framing::FrameError;
use protoobf_core::tunnel::TunnelError;
use protoobf_core::BuildError;

/// Errors surfaced by connections, relays and the event loop. Hostile
/// input (bad frames, undecodable bytes, oversized prefixes) arrives as
/// [`TransportError::Frame`] and closes the connection — it must never
/// panic the process.
#[derive(Debug)]
pub enum TransportError {
    /// Underlying socket/stream failure.
    Io(io::Error),
    /// The framing layer rejected the byte stream (truncation, hostile
    /// length prefix, undecodable frame).
    Frame(FrameError),
    /// A message could not be re-serialized (relay-side build failure).
    Build(BuildError),
    /// The operation was attempted on a connection that is closed or has
    /// already failed.
    Closed,
    /// The connection's outbound queue is at its configured byte cap
    /// ([`crate::conn::Conn::outbound_cap`]): the peer (or the socket) is
    /// not draining as fast as the caller produces. Not fatal — the
    /// connection stays open; retry after the transport has flushed.
    /// Cooperative callers (the gateway relay) avoid this error entirely
    /// by checking [`crate::conn::Conn::can_send`] and pausing their
    /// *inbound* side instead, propagating the pressure to the sender.
    Backpressure {
        /// Bytes currently queued outbound.
        queued: usize,
        /// The configured cap the queue is at or over.
        cap: usize,
    },
    /// The covert payload channel failed: corrupt tunnel frames, a
    /// truncated stream, or a carrier-free specification (see
    /// [`protoobf_core::tunnel::TunnelError`]). Closes the session — a
    /// tunnel that cannot deliver its payload byte-identically must not
    /// keep pumping.
    Tunnel(TunnelError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Frame(e) => write!(f, "framing error: {e}"),
            TransportError::Build(e) => write!(f, "relay serialization error: {e}"),
            TransportError::Closed => write!(f, "connection is closed"),
            TransportError::Backpressure { queued, cap } => {
                write!(f, "outbound queue at capacity ({queued} of {cap} bytes queued)")
            }
            TransportError::Tunnel(e) => write!(f, "covert tunnel error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Frame(e) => Some(e),
            TransportError::Build(e) => Some(e),
            TransportError::Closed => None,
            TransportError::Backpressure { .. } => None,
            TransportError::Tunnel(e) => Some(e),
        }
    }
}

impl From<TunnelError> for TransportError {
    fn from(e: TunnelError) -> Self {
        TransportError::Tunnel(e)
    }
}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

impl From<BuildError> for TransportError {
    fn from(e: BuildError) -> Self {
        TransportError::Build(e)
    }
}

impl TransportError {
    /// True when the error is a transient non-blocking readiness miss
    /// (`WouldBlock`) rather than a real failure.
    pub fn is_would_block(&self) -> bool {
        matches!(self, TransportError::Io(e) if e.kind() == io::ErrorKind::WouldBlock)
    }

    /// A stable numeric code per variant, carried as the `detail` of a
    /// flight-recorder [`protoobf_core::telemetry::EventKind::Fail`]
    /// event (events store only integers so recording stays
    /// allocation-free): 1 io, 2 frame, 3 build, 4 closed,
    /// 5 backpressure, 6 tunnel.
    pub fn code(&self) -> u64 {
        match self {
            TransportError::Io(_) => 1,
            TransportError::Frame(_) => 2,
            TransportError::Build(_) => 3,
            TransportError::Closed => 4,
            TransportError::Backpressure { .. } => 5,
            TransportError::Tunnel(_) => 6,
        }
    }
}

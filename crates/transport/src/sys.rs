//! Raw Linux syscalls for kernel readiness — **no libc dependency**.
//!
//! The repo is deliberately pure-std (see the vendored-crate offline note
//! in the ROADMAP): rather than pulling in `libc`/`mio`, the handful of
//! kernel entry points the event loop needs — `epoll_create1`,
//! `epoll_ctl`, `epoll_pwait`, `close`, and `prlimit64` for the stress
//! tests — are invoked directly with `core::arch::asm!` on the
//! architectures this project deploys to (x86-64 and aarch64 Linux).
//! Everything is wrapped in safe types here; nothing outside this module
//! touches a syscall number.
//!
//! On any other target the module still compiles but [`supported`] returns
//! `false` and [`Epoll::new`] fails with `Unsupported`; the event loop
//! then keeps its portable readiness-scan fallback (see
//! [`crate::evloop`]). That split is decided per call site at compile time
//! — the unsupported arms are `cfg`d to stubs, not runtime probes.
//!
//! The syscall ABI used here is the stable Linux one:
//!
//! * x86-64: number in `rax`, args in `rdi rsi rdx r10 r8 r9`, `syscall`
//!   clobbers `rcx`/`r11`, result in `rax` (negative errno on failure).
//! * aarch64: number in `x8`, args in `x0..x5`, `svc 0`, result in `x0`.
//!
//! `epoll_wait(2)` itself does not exist on aarch64; both targets use
//! `epoll_pwait` with a null signal mask, which is identical.

use std::io;
use std::time::Duration;

/// Whether this build carries the raw-syscall readiness backend (Linux on
/// x86-64/aarch64). `false` means [`Epoll::new`] always fails and the
/// event loop uses its portable scan fallback.
pub const fn supported() -> bool {
    cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))
}

/// Readiness flags of one [`EpollEvent`], mirroring the kernel's
/// `EPOLL*` bits. Only the bits the event loop consumes are named.
pub mod flags {
    /// The fd is readable (`EPOLLIN`).
    pub const IN: u32 = 0x001;
    /// The fd is writable (`EPOLLOUT`).
    pub const OUT: u32 = 0x004;
    /// Error condition (`EPOLLERR`). Always reported, never registered.
    pub const ERR: u32 = 0x008;
    /// Hang-up (`EPOLLHUP`). Always reported, never registered.
    pub const HUP: u32 = 0x010;
    /// Peer closed its write side (`EPOLLRDHUP`).
    pub const RDHUP: u32 = 0x2000;
    /// Edge-triggered delivery (`EPOLLET`).
    pub const ET: u32 = 1 << 31;
}

/// One readiness event, ABI-compatible with the kernel's `struct
/// epoll_event`. On x86-64 the kernel lays this struct out packed (12
/// bytes); everywhere else it is naturally aligned.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// `EPOLL*` readiness bits, see [`flags`].
    pub events: u32,
    /// The caller's token, echoed back verbatim.
    pub token: u64,
}

impl EpollEvent {
    /// A zeroed event, for pre-sizing wait buffers.
    pub const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, token: 0 }
    }

    /// The token this event is for (copies out of the possibly-packed
    /// struct, so callers never take a reference into it).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The readiness bits (copied out, as with [`EpollEvent::token`]).
    pub fn events(&self) -> u32 {
        self.events
    }
}

/// A kernel epoll instance: O(1) readiness discovery over any number of
/// registered fds, the engine behind the event loop's epoll path.
///
/// The wrapper owns the epoll fd and closes it on drop. Registration
/// uses raw fds (`std::os::fd::AsRawFd` on the stream); the caller must
/// keep the registered socket alive until it deregisters it or drops the
/// `Epoll` — the kernel removes closed fds from the interest list on its
/// own, so dropping a socket first is safe, merely untidy.
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
}

// SAFETY: the epoll fd is just a kernel handle; all methods take &self
// and the kernel serializes ctl/wait internally.
unsafe impl Send for Epoll {}
// SAFETY: as above — every method is &self and the kernel is the only
// mutable state, so concurrent calls from any thread are fine.
unsafe impl Sync for Epoll {}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// `Unsupported` on targets without the raw-syscall backend;
    /// otherwise the kernel's errno (e.g. fd exhaustion).
    pub fn new() -> io::Result<Epoll> {
        const EPOLL_CLOEXEC: usize = 0o2000000;
        // SAFETY: epoll_create1 takes no pointers; a flags-only syscall.
        let fd = syscall_result(unsafe { syscall3(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0) })?;
        Ok(Epoll { fd: fd as i32 })
    }

    /// Registers `fd` with the given interest `events` (see [`flags`]) and
    /// `token`. The token comes back verbatim in every event for this fd.
    ///
    /// # Errors
    ///
    /// The kernel's errno (`EEXIST` for double registration, `EBADF` for
    /// a dead fd, ...).
    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        self.ctl(op::ADD, fd, events, token)
    }

    /// Removes `fd` from the interest list. Harmless to call for an fd
    /// the kernel already dropped (the `ENOENT` is swallowed — the
    /// desired state is reached either way).
    pub fn del(&self, fd: i32) -> io::Result<()> {
        match self.ctl(op::DEL, fd, 0, 0) {
            Err(e) if e.raw_os_error() == Some(2 /* ENOENT */) => Ok(()),
            Err(e) if e.raw_os_error() == Some(9 /* EBADF */) => Ok(()),
            other => other,
        }
    }

    /// Blocks until at least one registered fd is ready, `timeout`
    /// elapses (`None` = forever, `Some(ZERO)` = poll), or a signal
    /// arrives. Fills `events` and returns how many are valid.
    ///
    /// # Errors
    ///
    /// The kernel's errno. `EINTR` is retried internally — the call only
    /// returns early with events or an elapsed timeout.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: isize = match timeout {
            None => -1,
            // Round sub-millisecond timeouts up so a nonzero timeout
            // never degenerates into a busy poll.
            Some(d) if d.as_millis() == 0 && !d.is_zero() => 1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as isize,
        };
        loop {
            // SAFETY: the event buffer outlives the call and its length
            // is passed alongside; the null sigmask (arg 5 = 0) makes
            // the kernel skip the sigset read entirely.
            let res = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.fd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0, // null sigmask: plain epoll_wait semantics
                    8, // sizeof(sigset_t) — ignored with a null mask
                )
            };
            match syscall_result(res) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.raw_os_error() == Some(4 /* EINTR */) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn ctl(&self, op: usize, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        // SAFETY: `ev` is a live, correctly laid out (#[repr] asserted
        // by the ABI test below) epoll_event the kernel reads before the
        // call returns; no pointer escapes it.
        syscall_result(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd as usize,
                op,
                fd as usize,
                &mut ev as *mut EpollEvent as usize,
                0,
                0,
            )
        })
        .map(|_| ())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: close takes no pointers; the fd is owned by self and
        // never used again after drop.
        let _ = syscall_result(unsafe { syscall3(nr::CLOSE, self.fd as usize, 0, 0) });
    }
}

mod op {
    pub const ADD: usize = 1;
    pub const DEL: usize = 2;
}

/// Raises this process's `RLIMIT_NOFILE` soft limit to at least `want`
/// fds (clamped to the hard limit), via `prlimit64` on self. Returns the
/// soft limit actually in effect afterwards. Used by the C10K stress
/// test, which needs tens of thousands of loopback sockets.
///
/// # Errors
///
/// `Unsupported` without the raw-syscall backend; otherwise the kernel's
/// errno (`EPERM` when `want` exceeds the hard limit and the process is
/// unprivileged — the soft limit is still raised as far as allowed).
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    const RLIMIT_NOFILE: usize = 7;
    #[repr(C)]
    struct Rlimit64 {
        cur: u64,
        max: u64,
    }
    let mut current = Rlimit64 { cur: 0, max: 0 };
    // SAFETY: `current` is a live #[repr(C)] rlimit64 the kernel fills
    // before returning; the new-limit pointer (arg 3) is null = read-only.
    syscall_result(unsafe {
        syscall6(nr::PRLIMIT64, 0, RLIMIT_NOFILE, 0, &mut current as *mut Rlimit64 as usize, 0, 0)
    })?;
    if current.cur >= want {
        return Ok(current.cur);
    }
    let new = Rlimit64 { cur: want.min(current.max), max: current.max };
    // SAFETY: `new` is a live #[repr(C)] rlimit64 the kernel only reads;
    // the old-limit pointer (arg 4) is null = nothing written back.
    syscall_result(unsafe {
        syscall6(nr::PRLIMIT64, 0, RLIMIT_NOFILE, &new as *const Rlimit64 as usize, 0, 0, 0)
    })?;
    Ok(new.cur)
}

/// Maps a raw syscall return to `io::Result`: values in `[-4095, -1]`
/// are negated errnos, everything else is success.
fn syscall_result(ret: isize) -> io::Result<isize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------
// Per-architecture syscall numbers and trampolines. Everything below is
// the only unsafe surface of the module; the numbers are part of the
// kernel's stable ABI and can never change.
// ---------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
    pub const PRLIMIT64: usize = 302;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const CLOSE: usize = 57;
    pub const PRLIMIT64: usize = 261;
}

/// Stub numbers for unsupported targets — never executed (the
/// trampolines below return `ENOSYS` without issuing a syscall), present
/// only so the module typechecks everywhere.
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod nr {
    pub const CLOSE: usize = usize::MAX;
    pub const EPOLL_CTL: usize = usize::MAX;
    pub const EPOLL_PWAIT: usize = usize::MAX;
    pub const EPOLL_CREATE1: usize = usize::MAX;
    pub const PRLIMIT64: usize = usize::MAX;
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall6(
    n: usize,
    a0: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
) -> isize {
    let ret: isize;
    // SAFETY: the x86-64 Linux syscall ABI — args in rdi/rsi/rdx/r10/
    // r8/r9, number in rax, rcx/r11 clobbered by the instruction. The
    // caller guarantees any pointers among the args are valid for the
    // specific syscall `n`.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a0,
            in("rsi") a1,
            in("rdx") a2,
            in("r10") a3,
            in("r8") a4,
            in("r9") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall6(
    n: usize,
    a0: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
) -> isize {
    let ret: isize;
    // SAFETY: the aarch64 Linux syscall ABI — args in x0..x5, number in
    // x8, result in x0. The caller guarantees any pointers among the
    // args are valid for the specific syscall `n`.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a0 => ret,
            in("x1") a1,
            in("x2") a2,
            in("x3") a3,
            in("x4") a4,
            in("x5") a5,
            options(nostack),
        );
    }
    ret
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn syscall6(
    _n: usize,
    _a0: usize,
    _a1: usize,
    _a2: usize,
    _a3: usize,
    _a4: usize,
    _a5: usize,
) -> isize {
    -38 // ENOSYS: the portable fallback path reports Unsupported
}

unsafe fn syscall3(n: usize, a0: usize, a1: usize, a2: usize) -> isize {
    // SAFETY: same contract as `syscall6`, forwarded with the unused
    // argument slots zeroed (every syscall ignores args past its arity).
    unsafe { syscall6(n, a0, a1, a2, 0, 0, 0) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    /// Every test below exercises the real kernel ABI; they are gated on
    /// the supported targets rather than compiled out so an unsupported
    /// port fails loudly if it ever claims support.
    fn ensure_supported() -> bool {
        if !supported() {
            eprintln!("sys: raw-syscall backend unsupported here; skipping");
            return false;
        }
        true
    }

    #[test]
    fn epoll_event_abi_layout() {
        // The kernel contract: 12 bytes packed on x86-64, 16 aligned
        // elsewhere. A wrong layout corrupts every event after the first.
        if cfg!(target_arch = "x86_64") {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        } else {
            assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
        }
    }

    #[test]
    fn epoll_reports_readable_socket() {
        if !ensure_supported() {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server.as_raw_fd(), flags::IN | flags::ET, 7).unwrap();

        // Nothing written yet: a zero-timeout wait reports no events.
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, Some(Duration::ZERO)).unwrap(), 0);

        client.write_all(b"ready?").unwrap();
        let n = epoll.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].events() & flags::IN, 0);

        // Edge-triggered: the event is consumed; without new bytes the
        // next zero-timeout wait is silent even though data is unread.
        assert_eq!(epoll.wait(&mut events, Some(Duration::ZERO)).unwrap(), 0);

        let mut buf = [0u8; 16];
        assert_eq!(server.read(&mut buf).unwrap(), 6);
        drop(client);
        // Peer hang-up arrives as a fresh edge.
        let n = epoll.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn deregistered_fd_goes_silent() {
        if !ensure_supported() {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server.as_raw_fd(), flags::IN, 1).unwrap();
        epoll.del(server.as_raw_fd()).unwrap();
        // Deleting twice (or after the kernel dropped it) stays Ok.
        epoll.del(server.as_raw_fd()).unwrap();

        client.write_all(b"x").unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, Some(Duration::from_millis(50))).unwrap(), 0);
    }

    #[test]
    fn raise_nofile_limit_is_monotone() {
        if !ensure_supported() {
            return;
        }
        let before = raise_nofile_limit(0).unwrap();
        let after = raise_nofile_limit(before).unwrap();
        assert!(after >= before, "raising to the current limit must not shrink it");
    }
}

//! In-memory duplex transport for tests: socket-free byte pipes with
//! non-blocking semantics, plus a shuttle that pumps two sans-io
//! [`Conn`]s against each other under arbitrary chunking patterns
//! (1-byte trickle, pipelined bursts, mid-stream cuts).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

use crate::conn::Conn;
use crate::error::TransportError;

#[derive(Debug, Default)]
struct Shared {
    /// Bytes in flight from end 0 to end 1 and back.
    queues: [VecDeque<u8>; 2],
    /// Write side of each end closed?
    closed: [bool; 2],
}

/// One end of an in-memory duplex stream. `Read`/`Write` behave like a
/// non-blocking socket: reads on an empty pipe return `WouldBlock` (or
/// `Ok(0)` once the peer closed), and reads deliver at most `max_chunk`
/// bytes per call to exercise partial-read handling.
#[derive(Debug)]
pub struct MemStream {
    shared: Arc<Mutex<Shared>>,
    /// Which end this is (0 or 1).
    side: usize,
    max_chunk: usize,
}

/// Creates a connected pair of in-memory streams; each read delivers at
/// most `max_chunk` bytes (use 1 for the hardest trickle).
pub fn mem_duplex(max_chunk: usize) -> (MemStream, MemStream) {
    let shared = Arc::new(Mutex::new(Shared::default()));
    (
        MemStream { shared: Arc::clone(&shared), side: 0, max_chunk: max_chunk.max(1) },
        MemStream { shared, side: 1, max_chunk: max_chunk.max(1) },
    )
}

impl MemStream {
    /// Closes this end's write side: the peer will see `Ok(0)` (EOF) once
    /// it drains the in-flight bytes.
    pub fn close(&self) {
        self.shared.lock().unwrap_or_else(|e| e.into_inner()).closed[self.side] = true;
    }

    /// Bytes currently in flight toward this end.
    pub fn pending(&self) -> usize {
        self.shared.lock().unwrap_or_else(|e| e.into_inner()).queues[1 - self.side].len()
    }
}

impl Read for MemStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut shared = self.shared.lock().unwrap_or_else(|e| e.into_inner());
        let peer = 1 - self.side;
        let queue = &mut shared.queues[peer];
        if queue.is_empty() {
            return if shared.closed[peer] {
                Ok(0)
            } else {
                Err(io::Error::from(io::ErrorKind::WouldBlock))
            };
        }
        let n = buf.len().min(self.max_chunk).min(queue.len());
        for slot in buf.iter_mut().take(n) {
            *slot = queue.pop_front().expect("length checked");
        }
        Ok(n)
    }
}

impl Write for MemStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut shared = self.shared.lock().unwrap_or_else(|e| e.into_inner());
        if shared.closed[self.side] {
            return Err(io::Error::from(io::ErrorKind::BrokenPipe));
        }
        shared.queues[self.side].extend(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Moves every queued outbound byte between two sans-io connections, in
/// chunks whose sizes the caller controls: `chunk_size(i)` bounds the
/// `i`-th transfer (sizes are clamped to at least one byte). Returns the
/// total number of bytes moved in both directions.
///
/// The shuttle only moves **bytes** — decoding (`poll_inbound`) and
/// replying stay with the caller, keeping the state machine's edges
/// visible to tests.
///
/// # Errors
///
/// Propagates `feed_inbound` failures (e.g. feeding a failed connection).
pub fn shuttle(
    a: &mut Conn<'_>,
    b: &mut Conn<'_>,
    mut chunk_size: impl FnMut(usize) -> usize,
) -> Result<usize, TransportError> {
    fn one_way(
        src: &mut Conn<'_>,
        dst: &mut Conn<'_>,
        chunk_size: &mut impl FnMut(usize) -> usize,
        step: &mut usize,
    ) -> Result<usize, TransportError> {
        let mut moved = 0usize;
        while src.has_outbound() {
            let n = chunk_size(*step).max(1).min(src.outbound().len());
            *step += 1;
            dst.feed_inbound(&src.outbound()[..n])?;
            src.consume_outbound(n);
            moved += n;
        }
        Ok(moved)
    }

    let mut moved = 0usize;
    let mut step = 0usize;
    loop {
        let forward = one_way(a, b, &mut chunk_size, &mut step)?;
        let backward = one_way(b, a, &mut chunk_size, &mut step)?;
        moved += forward + backward;
        if forward + backward == 0 {
            return Ok(moved);
        }
    }
}

//! The obfuscating gateway: the paper's deployment model as a transparent
//! TCP relay pair.
//!
//! An **encode** gateway accepts clear-framed connections (unmodified
//! client software linked against the plain spec), transcodes every
//! message onto the obfuscated codec and relays it upstream; a **decode**
//! gateway does the inverse in front of the real server. Response traffic
//! flows back through the same pair in reverse. Both directions of both
//! legs run over one shared compiled plan per codec ([`CodecService`]),
//! with per-connection pooled sessions ([`Conn`]).
//!
//! ```text
//!        clear frames          obfuscated frames          clear frames
//! client ───────────▶ encode gateway ───────────▶ decode gateway ───────────▶ server
//!        ◀─────────── (Relay per connection)     ◀─────────── (Relay)
//! ```

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use protoobf_core::message::Message;
use protoobf_core::service::CodecService;
use protoobf_core::{Codec, FormatGraph};

use crate::conn::{Conn, ConnState};
use crate::error::TransportError;
use crate::evloop::{self, Drive, LoopConfig, Session};
use crate::metrics::Metrics;

/// Bound on the per-connection upstream dial. The dial happens on the
/// accepting worker's thread, so an unreachable upstream must stall that
/// worker's other relays for at most this long (a fully non-blocking
/// connect is a ROADMAP item).
const UPSTREAM_DIAL_TIMEOUT: Duration = Duration::from_secs(10);

/// Which side of the obfuscated wire this gateway faces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayMode {
    /// Accept clear traffic, emit obfuscated traffic upstream (client
    /// side).
    Encode,
    /// Accept obfuscated traffic, emit clear traffic upstream (server
    /// side).
    Decode,
}

/// One relayed connection: the accepted ("down") leg and the dialed
/// upstream ("up") leg, each a sans-io [`Conn`], glued together by
/// transcoding every decoded message onto the other leg's codec.
///
/// Buffers and sessions are all reused across messages: decode borrows
/// the parse session's message, transcode refills a long-lived
/// destination message, encode appends to the outbound buffer. The
/// transcode step itself still runs the graph-walk runtime (per-field
/// value materialization allocates); compiling it into plan-level copy
/// programs is a ROADMAP item.
pub struct Relay<'s> {
    down: TcpStream,
    up: TcpStream,
    down_conn: Conn<'s>,
    up_conn: Conn<'s>,
    /// Transcode target bound to the up leg's tx codec.
    to_up: Message<'s>,
    /// Transcode target bound to the down leg's tx codec.
    to_down: Message<'s>,
    read_buf: Vec<u8>,
    down_eof_relayed: bool,
    up_eof_relayed: bool,
    metrics: &'s Metrics,
}

impl<'s> Relay<'s> {
    /// Builds a relay between an accepted socket (framed with `down_svc`'s
    /// codec in both directions) and a dialed upstream socket (framed with
    /// `up_svc`'s codec). Both sockets must already be non-blocking.
    pub fn new(
        down: TcpStream,
        up: TcpStream,
        down_svc: &'s CodecService,
        up_svc: &'s CodecService,
        metrics: &'s Metrics,
    ) -> Relay<'s> {
        Relay {
            down,
            up,
            down_conn: Conn::new(down_svc, down_svc),
            up_conn: Conn::new(up_svc, up_svc),
            to_up: up_svc.codec().message(),
            to_down: down_svc.codec().message(),
            read_buf: vec![0u8; 16 * 1024],
            down_eof_relayed: false,
            up_eof_relayed: false,
            metrics,
        }
    }
}

impl Session for Relay<'_> {
    fn drive(&mut self) -> Result<Drive, TransportError> {
        let mut progress = false;
        progress |= pump_direction(
            &mut self.down,
            &mut self.down_conn,
            &mut self.up,
            &mut self.up_conn,
            &mut self.to_up,
            &mut self.read_buf,
            &mut self.down_eof_relayed,
            self.metrics,
        )?;
        progress |= pump_direction(
            &mut self.up,
            &mut self.up_conn,
            &mut self.down,
            &mut self.down_conn,
            &mut self.to_down,
            &mut self.read_buf,
            &mut self.up_eof_relayed,
            self.metrics,
        )?;
        if self.down_eof_relayed && self.up_eof_relayed {
            return Ok(Drive::Done);
        }
        Ok(if progress { Drive::Progress } else { Drive::Idle })
    }
}

/// Drains the socket's ready bytes into the connection (non-blocking).
/// Returns whether any byte moved; clean EOF is fed to the connection.
fn read_into(
    stream: &mut TcpStream,
    conn: &mut Conn<'_>,
    buf: &mut [u8],
    metrics: &Metrics,
) -> Result<bool, TransportError> {
    if conn.state() != ConnState::Open {
        return Ok(false);
    }
    let mut progress = false;
    loop {
        match stream.read(buf) {
            Ok(0) => {
                conn.feed_eof();
                progress = true;
                break;
            }
            Ok(n) => {
                conn.feed_inbound(&buf[..n])?;
                Metrics::add(&metrics.bytes_in, n as u64);
                progress = true;
                if n < buf.len() {
                    break; // drained the socket's ready bytes
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
    Ok(progress)
}

/// Writes the connection's queued outbound bytes to the socket until it
/// would block or the queue drains. Returns whether any byte moved.
fn flush_from(
    stream: &mut TcpStream,
    conn: &mut Conn<'_>,
    metrics: &Metrics,
) -> Result<bool, TransportError> {
    let mut progress = false;
    while conn.has_outbound() {
        match stream.write(conn.outbound()) {
            Ok(0) => return Err(TransportError::Io(io::Error::from(io::ErrorKind::WriteZero))),
            Ok(n) => {
                conn.consume_outbound(n);
                Metrics::add(&metrics.bytes_out, n as u64);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
    Ok(progress)
}

/// Pumps one direction of a relay: `src` socket bytes → `src_conn` frames
/// → decoded messages → transcode into `tmpl` → `dst_conn` frames → `dst`
/// socket. Returns whether any byte or message moved.
#[allow(clippy::too_many_arguments)]
fn pump_direction(
    src: &mut TcpStream,
    src_conn: &mut Conn<'_>,
    dst: &mut TcpStream,
    dst_conn: &mut Conn<'_>,
    tmpl: &mut Message<'_>,
    read_buf: &mut [u8],
    eof_relayed: &mut bool,
    metrics: &Metrics,
) -> Result<bool, TransportError> {
    let mut progress = read_into(src, src_conn, read_buf, metrics)?;

    // Decode complete frames, transcode, re-encode onto the other leg.
    while let Some(msg) = src_conn.poll_inbound()? {
        msg.transcode_into(tmpl)?;
        dst_conn.send(tmpl)?;
        Metrics::add(&metrics.messages_in, 1);
        Metrics::add(&metrics.messages_out, 1);
        progress = true;
    }

    progress |= flush_from(dst, dst_conn, metrics)?;

    // Propagate the half-close once everything in flight is delivered.
    if !*eof_relayed && src_conn.state() == ConnState::PeerClosed && !dst_conn.has_outbound() {
        let _ = dst.shutdown(Shutdown::Write);
        *eof_relayed = true;
        progress = true;
    }
    Ok(progress)
}

/// A framed echo session: parses every inbound message and sends it
/// straight back on the same codec — the stand-in "real server" for
/// gateway smoke tests and the `protoobf recv` subcommand.
pub struct Echo<'s> {
    stream: TcpStream,
    conn: Conn<'s>,
    reply: Message<'s>,
    read_buf: Vec<u8>,
    metrics: &'s Metrics,
}

impl<'s> Echo<'s> {
    /// Wraps an accepted (non-blocking) socket speaking `svc`'s codec in
    /// both directions.
    pub fn new(stream: TcpStream, svc: &'s CodecService, metrics: &'s Metrics) -> Echo<'s> {
        Echo {
            stream,
            conn: Conn::new(svc, svc),
            reply: svc.codec().message(),
            read_buf: vec![0u8; 16 * 1024],
            metrics,
        }
    }
}

impl Session for Echo<'_> {
    fn drive(&mut self) -> Result<Drive, TransportError> {
        let mut progress =
            read_into(&mut self.stream, &mut self.conn, &mut self.read_buf, self.metrics)?;
        // Decode, then echo. The reply cannot be sent while the decoded
        // message is still borrowed from the connection's parse session,
        // so each message is first copied into the reusable reply (same
        // graph on both sides: transcoding is a plain structural copy).
        while let Some(msg) = self.conn.poll_inbound()? {
            msg.transcode_into(&mut self.reply)?;
            Metrics::add(&self.metrics.messages_in, 1);
            progress = true;
            self.conn.send(&self.reply)?;
            Metrics::add(&self.metrics.messages_out, 1);
        }
        progress |= flush_from(&mut self.stream, &mut self.conn, self.metrics)?;
        if self.conn.state() == ConnState::PeerClosed && !self.conn.has_outbound() {
            let _ = self.stream.shutdown(Shutdown::Write);
            return Ok(Drive::Done);
        }
        Ok(if progress { Drive::Progress } else { Drive::Idle })
    }
}

/// One obfuscation gateway: the clear codec (identity plan over the plain
/// specification) and the obfuscated codec, plus which side of the wire
/// this instance faces. [`Gateway::serve`] relays accepted connections to
/// `upstream` until shut down.
pub struct Gateway {
    clear: CodecService,
    obf: CodecService,
    mode: GatewayMode,
    upstream: SocketAddr,
    metrics: Metrics,
}

impl Gateway {
    /// Builds a gateway for `plain`'s protocol with the given obfuscated
    /// codec (both gateways of a pair must derive it from the same seed /
    /// level — the shared secret). `upstream` is the decode gateway (for
    /// [`GatewayMode::Encode`]) or the real server (for
    /// [`GatewayMode::Decode`]).
    ///
    /// # Errors
    ///
    /// I/O errors resolving `upstream`.
    pub fn new(
        plain: &FormatGraph,
        obf: Codec,
        mode: GatewayMode,
        upstream: impl ToSocketAddrs,
    ) -> io::Result<Gateway> {
        let upstream = upstream.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "upstream resolves to no address")
        })?;
        Ok(Gateway {
            clear: CodecService::new(Codec::identity(plain)),
            obf: CodecService::new(obf),
            mode,
            upstream,
            metrics: Metrics::new(),
        })
    }

    /// The gateway's live counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The clear-side codec service (identity plan).
    pub fn clear_service(&self) -> &CodecService {
        &self.clear
    }

    /// The obfuscated-side codec service.
    pub fn obf_service(&self) -> &CodecService {
        &self.obf
    }

    /// Accepts and relays connections until `shutdown` is raised (or
    /// `cfg.accept_limit` is reached and the last relay drains). Each
    /// accepted connection dials one upstream connection.
    ///
    /// # Errors
    ///
    /// Listener-level failures only; per-connection errors are counted in
    /// [`Gateway::metrics`].
    pub fn serve(
        &self,
        listener: TcpListener,
        cfg: &LoopConfig,
        shutdown: &AtomicBool,
    ) -> io::Result<()> {
        let (down_svc, up_svc) = match self.mode {
            GatewayMode::Encode => (&self.clear, &self.obf),
            GatewayMode::Decode => (&self.obf, &self.clear),
        };
        evloop::serve(listener, cfg, shutdown, &self.metrics, |down, _peer| {
            let up = TcpStream::connect_timeout(&self.upstream, UPSTREAM_DIAL_TIMEOUT)
                .map_err(TransportError::Io)?;
            up.set_nonblocking(true).map_err(TransportError::Io)?;
            let _ = up.set_nodelay(true);
            Ok(Relay::new(down, up, down_svc, up_svc, &self.metrics))
        })
    }
}

//! The obfuscating gateway: the paper's deployment model as a transparent
//! TCP relay pair.
//!
//! An **encode** gateway accepts clear-framed connections (unmodified
//! client software linked against the plain spec), transcodes every
//! message onto the obfuscated codec and relays it upstream; a **decode**
//! gateway does the inverse in front of the real server. Response traffic
//! flows back through the same pair in reverse. Both directions of both
//! legs run over one shared compiled plan per codec ([`CodecService`]),
//! with per-connection pooled sessions ([`Conn`]); the per-message
//! transcode step runs a compiled plan-level copy program shared per leg
//! pairing ([`CodecService::transcode_target`]), so the steady-state
//! relay loop — decode, transcode, re-encode — allocates nothing.
//!
//! ```text
//!        clear frames          obfuscated frames          clear frames
//! client ───────────▶ encode gateway ───────────▶ decode gateway ───────────▶ server
//!        ◀─────────── (Relay per connection)     ◀─────────── (Relay)
//! ```
//!
//! A gateway pair is configured by two copies of one
//! [`protoobf_core::profile::Profile`] file ([`Gateway::from_endpoint`]):
//! each side independently derives the whole stack from the shared key,
//! and the two derivations can be verified equal by comparing
//! [`Gateway::fingerprint`]s before any traffic flows. Profiles with
//! distinct `tx`/`rx` specs run **asymmetric** request/response chains —
//! each relay leg carries a different grammar per direction.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use protoobf_core::message::Message;
use protoobf_core::profile::{Endpoint, Fingerprint};
use protoobf_core::sample::sample_into;
use protoobf_core::service::CodecService;
use protoobf_core::{Codec, FormatGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::conn::{Conn, ConnState};
use crate::error::TransportError;
use crate::evloop::{self, Drive, LoopConfig, Session};
use crate::metrics::{peer_token, EventKind, Metrics, Telemetry};

/// Bound on the per-connection upstream dial. The dial happens on the
/// accepting worker's thread, so an unreachable upstream must stall that
/// worker's other relays for at most this long (a fully non-blocking
/// connect is a ROADMAP item).
const UPSTREAM_DIAL_TIMEOUT: Duration = Duration::from_secs(10);

/// Which side of the obfuscated wire this gateway faces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayMode {
    /// Accept clear traffic, emit obfuscated traffic upstream (client
    /// side).
    Encode,
    /// Accept obfuscated traffic, emit clear traffic upstream (server
    /// side).
    Decode,
}

/// The two codec services of one relay leg: what the leg's socket is
/// parsed with (`rx`) and serialized onto (`tx`). Symmetric protocols
/// pass the same service twice ([`LegServices::symmetric`]).
#[derive(Debug, Clone, Copy)]
pub struct LegServices<'s> {
    /// Codec of the leg's inbound frames.
    pub rx: &'s CodecService,
    /// Codec of the leg's outbound frames.
    pub tx: &'s CodecService,
}

impl<'s> LegServices<'s> {
    /// Both directions of the leg speak `svc`'s codec.
    pub fn symmetric(svc: &'s CodecService) -> LegServices<'s> {
        LegServices { rx: svc, tx: svc }
    }
}

/// One relayed connection: the accepted ("down") leg and the dialed
/// upstream ("up") leg, each a sans-io [`Conn`], glued together by
/// transcoding every decoded message onto the other leg's codec.
///
/// Buffers and sessions are all reused across messages: decode borrows
/// the parse session's message, transcode refills a long-lived
/// destination message, encode appends to the outbound buffer. The
/// transcode step runs a compiled plan-level **copy program**
/// ([`protoobf_core::plan::CopyProgram`], compiled once per (rx, tx)
/// codec pairing and shared by every connection via
/// [`CodecService::transcode_target`]), so the whole steady-state relay
/// loop — decode, transcode, re-encode — performs zero per-message heap
/// allocation.
#[derive(Debug)]
pub struct Relay<'s> {
    down: TcpStream,
    up: TcpStream,
    down_conn: Conn<'s>,
    up_conn: Conn<'s>,
    /// Transcode target bound to the up leg's tx codec.
    to_up: Message<'s>,
    /// Transcode target bound to the down leg's tx codec.
    to_down: Message<'s>,
    read_buf: Vec<u8>,
    down_eof_relayed: bool,
    up_eof_relayed: bool,
    /// Whether each direction's last pump had its ingestion paused by
    /// the other leg's outbound cap — edge-detects
    /// [`Metrics::backpressure_events`] so a long stall counts once, not
    /// once per drive.
    down_gated: bool,
    up_gated: bool,
    metrics: &'s Metrics,
    token: u64,
}

impl<'s> Relay<'s> {
    /// Builds a relay between an accepted socket (framed with `down`'s
    /// services) and a dialed upstream socket (framed with `up`'s). The
    /// two legs may differ per direction (asymmetric request/response
    /// profiles); `down.rx` must share its plain spec with `up.tx`, and
    /// `up.rx` with `down.tx` (the transcode path — validated here, at
    /// connection setup, by compiling/sharing the copy programs, so no
    /// structural check runs per message). Both sockets must already be
    /// non-blocking.
    ///
    /// # Errors
    ///
    /// [`TransportError::Build`]
    /// ([`protoobf_core::BuildError::GraphMismatch`]) when a
    /// leg pairing does not share its plain specification — a
    /// misconfigured gateway, surfaced before any byte is relayed.
    pub fn new(
        down_stream: TcpStream,
        up_stream: TcpStream,
        down: LegServices<'s>,
        up: LegServices<'s>,
        metrics: &'s Metrics,
    ) -> Result<Relay<'s>, TransportError> {
        let to_up = up.tx.transcode_target(down.rx)?;
        let to_down = down.tx.transcode_target(up.rx)?;
        Ok(Relay {
            down: down_stream,
            up: up_stream,
            down_conn: Conn::new(down.rx, down.tx),
            up_conn: Conn::new(up.rx, up.tx),
            to_up,
            to_down,
            read_buf: vec![0u8; 16 * 1024],
            down_eof_relayed: false,
            up_eof_relayed: false,
            down_gated: false,
            up_gated: false,
            metrics,
            token: 0,
        })
    }

    /// Sets the flight-recorder token for this relay's lifecycle events
    /// (builder; conventionally [`peer_token`] of the accepted peer).
    pub fn with_token(mut self, token: u64) -> Relay<'s> {
        self.token = token;
        self
    }

    /// Caps both legs' outbound queues at `cap` bytes (builder; default
    /// [`crate::conn::DEFAULT_OUTBOUND_CAP`]). When one leg's queue
    /// reaches its cap the relay stops *reading* the opposite socket, so
    /// a slow receiver surfaces to the original sender as a closed TCP
    /// window rather than as unbounded gateway memory.
    pub fn outbound_cap(mut self, cap: usize) -> Relay<'s> {
        self.down_conn.set_outbound_cap(cap);
        self.up_conn.set_outbound_cap(cap);
        self
    }
}

impl Session for Relay<'_> {
    fn drive(&mut self) -> Result<Drive, TransportError> {
        let mut progress = false;
        progress |= pump_direction(
            &mut self.down,
            &mut self.down_conn,
            &mut self.up,
            &mut self.up_conn,
            &mut self.to_up,
            &mut self.read_buf,
            &mut self.down_eof_relayed,
            &mut self.down_gated,
            self.metrics,
            self.token,
        )?;
        progress |= pump_direction(
            &mut self.up,
            &mut self.up_conn,
            &mut self.down,
            &mut self.down_conn,
            &mut self.to_down,
            &mut self.read_buf,
            &mut self.up_eof_relayed,
            &mut self.up_gated,
            self.metrics,
            self.token,
        )?;
        if self.down_eof_relayed && self.up_eof_relayed {
            return Ok(Drive::Done);
        }
        Ok(if progress { Drive::Progress } else { Drive::Idle })
    }

    fn sockets<'a>(&'a self, out: &mut Vec<&'a TcpStream>) {
        out.push(&self.down);
        out.push(&self.up);
    }

    fn token(&self) -> u64 {
        self.token
    }
}

/// Drains the socket's ready bytes into the connection (non-blocking).
/// Returns whether any byte moved; clean EOF is fed to the connection.
/// Shared with the tunnel session ([`crate::tunnel`]).
pub(crate) fn read_into(
    stream: &mut TcpStream,
    conn: &mut Conn<'_>,
    buf: &mut [u8],
    metrics: &Metrics,
) -> Result<bool, TransportError> {
    if conn.state() != ConnState::Open {
        return Ok(false);
    }
    let mut progress = false;
    loop {
        match stream.read(buf) {
            Ok(0) => {
                conn.feed_eof();
                progress = true;
                break;
            }
            Ok(n) => {
                conn.feed_inbound(&buf[..n])?;
                Metrics::add(&metrics.bytes_in, n as u64);
                progress = true;
                if n < buf.len() {
                    break; // drained the socket's ready bytes
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
    Ok(progress)
}

/// Writes the connection's queued outbound bytes to the socket until it
/// would block or the queue drains. Returns whether any byte moved.
/// Shared with the tunnel session ([`crate::tunnel`]).
pub(crate) fn flush_from(
    stream: &mut TcpStream,
    conn: &mut Conn<'_>,
    metrics: &Metrics,
) -> Result<bool, TransportError> {
    let mut progress = false;
    while conn.has_outbound() {
        match stream.write(conn.outbound()) {
            Ok(0) => return Err(TransportError::Io(io::Error::from(io::ErrorKind::WriteZero))),
            Ok(n) => {
                conn.consume_outbound(n);
                Metrics::add(&metrics.bytes_out, n as u64);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
    Ok(progress)
}

/// Pumps one direction of a relay: `src` socket bytes → `src_conn` frames
/// → decoded messages → transcode into `tmpl` → `dst_conn` frames → `dst`
/// socket. Returns whether any byte or message moved.
///
/// Ingestion is **gated on the destination's outbound cap**
/// ([`Conn::can_send`]): while `dst_conn`'s queue is at capacity this
/// direction neither reads `src` nor decodes buffered frames, so
/// [`TransportError::Backpressure`] is never hit on this path — the
/// pressure propagates backwards as an unread socket (a closed TCP window
/// to the sender) instead of killing the relay or growing its memory.
/// This is safe under edge-triggered readiness: a pass whose queue stays
/// at capacity past the flush has queued `dst` bytes behind a
/// write-blocked socket, so the destination's next writability edge
/// re-drives the session and reopens the gate. `gated` edge-detects
/// passes where the cap paused ingestion (before the flush relieves it)
/// for [`Metrics::backpressure_events`] — a long stall counts once.
#[allow(clippy::too_many_arguments)]
fn pump_direction(
    src: &mut TcpStream,
    src_conn: &mut Conn<'_>,
    dst: &mut TcpStream,
    dst_conn: &mut Conn<'_>,
    tmpl: &mut Message<'_>,
    read_buf: &mut [u8],
    eof_relayed: &mut bool,
    gated: &mut bool,
    metrics: &Metrics,
    token: u64,
) -> Result<bool, TransportError> {
    let mut progress = false;
    let engaged;
    if dst_conn.can_send() {
        progress |= read_into(src, src_conn, read_buf, metrics)?;

        // Decode complete frames, transcode (compiled copy program,
        // shared per leg pairing), re-encode onto the other leg — until
        // the frames run out or the destination queue fills. Each stage
        // runs under a sampled timer (an armed sample on an empty poll
        // is dropped — under-sampling, never skew), and frame sizes
        // feed the traffic-shape histograms; all of it relaxed atomics,
        // nothing on the allocation-free path changes.
        while dst_conn.can_send() {
            let parse_t = metrics.stages.parse.start();
            let Some(msg) = src_conn.poll_inbound()? else { break };
            metrics.stages.parse.finish(parse_t);
            Metrics::add(&metrics.messages_in, 1);
            let transcode_t = metrics.stages.transcode.start();
            msg.transcode_into(tmpl)?;
            metrics.stages.transcode.finish(transcode_t);
            Metrics::add(&metrics.transcodes, 1);
            // Recorded after the transcode releases the decoded
            // message's borrow of the connection.
            metrics.frame_bytes_in.record(src_conn.last_inbound_frame_len() as u64);
            let serialize_t = metrics.stages.serialize.start();
            dst_conn.send(tmpl)?;
            metrics.stages.serialize.finish(serialize_t);
            Metrics::add(&metrics.messages_out, 1);
            metrics.frame_bytes_out.record(dst_conn.last_outbound_frame_len() as u64);
            progress = true;
        }
        engaged = !dst_conn.can_send();
    } else {
        engaged = true;
    }

    progress |= flush_from(dst, dst_conn, metrics)?;

    if engaged && !*gated {
        Metrics::add(&metrics.backpressure_events, 1);
        metrics.recorder.record(EventKind::Backpressure, token, dst_conn.outbound_len() as u64);
    }
    *gated = engaged;

    // Propagate the half-close once everything in flight is delivered.
    if !*eof_relayed && src_conn.state() == ConnState::PeerClosed && !dst_conn.has_outbound() {
        let _ = dst.shutdown(Shutdown::Write);
        *eof_relayed = true;
        progress = true;
    }
    Ok(progress)
}

/// A framed echo session: parses every inbound message and sends it
/// straight back on the same codec — the stand-in "real server" for
/// gateway smoke tests and the `protoobf recv` subcommand.
#[derive(Debug)]
pub struct Echo<'s> {
    stream: TcpStream,
    conn: Conn<'s>,
    reply: Message<'s>,
    read_buf: Vec<u8>,
    /// Edge-detector for [`Metrics::backpressure_events`], as in
    /// [`Relay`].
    gated: bool,
    metrics: &'s Metrics,
    token: u64,
}

impl<'s> Echo<'s> {
    /// Wraps an accepted (non-blocking) socket speaking `svc`'s codec in
    /// both directions.
    pub fn new(stream: TcpStream, svc: &'s CodecService, metrics: &'s Metrics) -> Echo<'s> {
        Echo {
            stream,
            conn: Conn::new(svc, svc),
            // A codec always structurally matches itself, so the armed
            // self-pair target cannot fail to build.
            reply: svc.transcode_target(svc).expect("self-pair transcode target"),
            read_buf: vec![0u8; 16 * 1024],
            gated: false,
            metrics,
            token: 0,
        }
    }

    /// Caps the outbound queue at `cap` bytes (builder; default
    /// [`crate::conn::DEFAULT_OUTBOUND_CAP`]). A full queue pauses reads
    /// (the echo stops accepting requests it could not answer) instead of
    /// buffering without bound.
    pub fn outbound_cap(mut self, cap: usize) -> Echo<'s> {
        self.conn.set_outbound_cap(cap);
        self
    }

    /// Sets the flight-recorder token (builder); see
    /// [`Relay::with_token`].
    pub fn with_token(mut self, token: u64) -> Echo<'s> {
        self.token = token;
        self
    }
}

impl Session for Echo<'_> {
    fn drive(&mut self) -> Result<Drive, TransportError> {
        let mut progress = false;
        let engaged;
        // Ingestion gated on the outbound cap, as in `pump_direction`:
        // a peer that sends requests faster than it reads replies stalls
        // its own stream instead of growing the echo's queue.
        if self.conn.can_send() {
            progress |=
                read_into(&mut self.stream, &mut self.conn, &mut self.read_buf, self.metrics)?;
            // Decode, then echo. The reply cannot be sent while the
            // decoded message is still borrowed from the connection's
            // parse session, so each message is first copied into the
            // reusable reply (same graph on both sides: transcoding is a
            // plain structural copy).
            while self.conn.can_send() {
                let parse_t = self.metrics.stages.parse.start();
                let Some(msg) = self.conn.poll_inbound()? else { break };
                self.metrics.stages.parse.finish(parse_t);
                Metrics::add(&self.metrics.messages_in, 1);
                let transcode_t = self.metrics.stages.transcode.start();
                msg.transcode_into(&mut self.reply)?;
                self.metrics.stages.transcode.finish(transcode_t);
                Metrics::add(&self.metrics.transcodes, 1);
                // After the transcode releases the decoded message's
                // borrow of the connection.
                self.metrics.frame_bytes_in.record(self.conn.last_inbound_frame_len() as u64);
                progress = true;
                let serialize_t = self.metrics.stages.serialize.start();
                self.conn.send(&self.reply)?;
                self.metrics.stages.serialize.finish(serialize_t);
                Metrics::add(&self.metrics.messages_out, 1);
                self.metrics.frame_bytes_out.record(self.conn.last_outbound_frame_len() as u64);
            }
            engaged = !self.conn.can_send();
        } else {
            engaged = true;
        }
        progress |= flush_from(&mut self.stream, &mut self.conn, self.metrics)?;
        if engaged && !self.gated {
            Metrics::add(&self.metrics.backpressure_events, 1);
            self.metrics.recorder.record(
                EventKind::Backpressure,
                self.token,
                self.conn.outbound_len() as u64,
            );
        }
        self.gated = engaged;
        if self.conn.state() == ConnState::PeerClosed && !self.conn.has_outbound() {
            let _ = self.stream.shutdown(Shutdown::Write);
            return Ok(Drive::Done);
        }
        Ok(if progress { Drive::Progress } else { Drive::Idle })
    }

    fn sockets<'a>(&'a self, out: &mut Vec<&'a TcpStream>) {
        out.push(&self.stream);
    }

    fn token(&self) -> u64 {
        self.token
    }
}

/// A framed request/response session for **asymmetric** protocols: every
/// inbound message (the request spec) is answered with a freshly sampled
/// message of the response spec — the stand-in "real server" behind a
/// decode gateway when the two directions speak different grammars and a
/// byte [`Echo`] therefore cannot apply. Used by `protoobf recv` for
/// asymmetric profiles.
#[derive(Debug)]
pub struct Responder<'s> {
    stream: TcpStream,
    conn: Conn<'s>,
    /// Codec the sampled replies are drawn from (`reply_svc`'s).
    reply_svc: &'s CodecService,
    /// Pooled reply scratch: one long-lived message refilled per reply
    /// ([`sample_into`]), so answering does not allocate a fresh message
    /// store per request.
    reply: Message<'s>,
    rng: StdRng,
    read_buf: Vec<u8>,
    /// Edge-detector for [`Metrics::backpressure_events`], as in
    /// [`Relay`].
    gated: bool,
    metrics: &'s Metrics,
    token: u64,
}

impl<'s> Responder<'s> {
    /// Wraps an accepted (non-blocking) socket that receives
    /// `request_svc`-framed messages and answers each with a random
    /// message of `reply_svc`'s codec (deterministic per `seed`).
    pub fn new(
        stream: TcpStream,
        request_svc: &'s CodecService,
        reply_svc: &'s CodecService,
        seed: u64,
        metrics: &'s Metrics,
    ) -> Responder<'s> {
        Responder {
            stream,
            conn: Conn::new(request_svc, reply_svc),
            reply_svc,
            reply: reply_svc.codec().message_seeded(seed),
            rng: StdRng::seed_from_u64(seed),
            read_buf: vec![0u8; 16 * 1024],
            gated: false,
            metrics,
            token: 0,
        }
    }

    /// Caps the outbound queue at `cap` bytes (builder; default
    /// [`crate::conn::DEFAULT_OUTBOUND_CAP`]); see [`Echo::outbound_cap`].
    pub fn outbound_cap(mut self, cap: usize) -> Responder<'s> {
        self.conn.set_outbound_cap(cap);
        self
    }

    /// Sets the flight-recorder token (builder); see
    /// [`Relay::with_token`].
    pub fn with_token(mut self, token: u64) -> Responder<'s> {
        self.token = token;
        self
    }
}

impl Session for Responder<'_> {
    fn drive(&mut self) -> Result<Drive, TransportError> {
        let mut progress = false;
        let engaged;
        // Ingestion gated on the outbound cap, as in `pump_direction`.
        if self.conn.can_send() {
            progress |=
                read_into(&mut self.stream, &mut self.conn, &mut self.read_buf, self.metrics)?;
            // The decoded request's content is not inspected — arrival of
            // a structurally valid message is the contract; the reply is
            // sampled from the *other* direction's grammar into a pooled
            // scratch message (stores reused across replies; only the
            // sampled values themselves still allocate — see
            // [`sample_into`]).
            loop {
                if !self.conn.can_send() {
                    break;
                }
                let parse_t = self.metrics.stages.parse.start();
                if self.conn.poll_inbound()?.is_none() {
                    break;
                }
                self.metrics.stages.parse.finish(parse_t);
                Metrics::add(&self.metrics.messages_in, 1);
                self.metrics.frame_bytes_in.record(self.conn.last_inbound_frame_len() as u64);
                sample_into(self.reply_svc.codec(), &mut self.reply, &mut self.rng, &[]);
                let serialize_t = self.metrics.stages.serialize.start();
                self.conn.send(&self.reply)?;
                self.metrics.stages.serialize.finish(serialize_t);
                Metrics::add(&self.metrics.messages_out, 1);
                self.metrics.frame_bytes_out.record(self.conn.last_outbound_frame_len() as u64);
                progress = true;
            }
            engaged = !self.conn.can_send();
        } else {
            engaged = true;
        }
        progress |= flush_from(&mut self.stream, &mut self.conn, self.metrics)?;
        if engaged && !self.gated {
            Metrics::add(&self.metrics.backpressure_events, 1);
            self.metrics.recorder.record(
                EventKind::Backpressure,
                self.token,
                self.conn.outbound_len() as u64,
            );
        }
        self.gated = engaged;
        if self.conn.state() == ConnState::PeerClosed && !self.conn.has_outbound() {
            let _ = self.stream.shutdown(Shutdown::Write);
            return Ok(Drive::Done);
        }
        Ok(if progress { Drive::Progress } else { Drive::Idle })
    }

    fn sockets<'a>(&'a self, out: &mut Vec<&'a TcpStream>) {
        out.push(&self.stream);
    }

    fn token(&self) -> u64 {
        self.token
    }
}

/// One obfuscation gateway: the four codec services of its two relay legs
/// (accepted "down" side and dialed "up" side, one `rx`/`tx` pair each),
/// plus which side of the obfuscated wire this instance faces.
/// [`Gateway::serve`] relays accepted connections to `upstream` until
/// shut down.
#[derive(Debug)]
pub struct Gateway {
    down_rx: Arc<CodecService>,
    down_tx: Arc<CodecService>,
    up_rx: Arc<CodecService>,
    up_tx: Arc<CodecService>,
    mode: GatewayMode,
    upstream: SocketAddr,
    metrics: Arc<Metrics>,
    /// Per-connection outbound queue cap for both relay legs (`None` =
    /// [`crate::conn::DEFAULT_OUTBOUND_CAP`]).
    outbound_cap: Option<usize>,
    /// Derivation fingerprint when built from a profile endpoint.
    fingerprint: Option<Fingerprint>,
}

impl Gateway {
    /// Legacy symmetric constructor: one plain spec, one obfuscated codec
    /// for both directions (both gateways of a pair must derive it from
    /// the same key / level — the shared secret). `upstream` is the
    /// decode gateway (for [`GatewayMode::Encode`]) or the real server
    /// (for [`GatewayMode::Decode`]). Prefer [`Gateway::from_endpoint`],
    /// which also carries asymmetric profiles and the fingerprint.
    ///
    /// # Errors
    ///
    /// I/O errors resolving `upstream`.
    pub fn new(
        plain: &FormatGraph,
        obf: Codec,
        mode: GatewayMode,
        upstream: impl ToSocketAddrs,
    ) -> io::Result<Gateway> {
        let clear = Arc::new(CodecService::new(Codec::identity(plain)));
        let obf = Arc::new(CodecService::new(obf));
        let (down, up) = match mode {
            GatewayMode::Encode => (&clear, &obf),
            GatewayMode::Decode => (&obf, &clear),
        };
        Ok(Gateway {
            down_rx: Arc::clone(down),
            down_tx: Arc::clone(down),
            up_rx: Arc::clone(up),
            up_tx: Arc::clone(up),
            mode,
            upstream: resolve_upstream(upstream)?,
            metrics: Arc::new(Metrics::new()),
            outbound_cap: None,
            fingerprint: None,
        })
    }

    /// Builds a gateway from a compiled profile [`Endpoint`] — the whole
    /// point of the profile API: both gateways of a pair are configured
    /// by two copies of the same profile file and derive identical
    /// stacks, verifiable via [`Gateway::fingerprint`] before traffic
    /// flows.
    ///
    /// The encode gateway faces the initiator: its clear leg parses the
    /// profile's `tx` spec and emits the `rx` spec, its obfuscated leg
    /// the reverse. The decode gateway mirrors that onto the responder
    /// side. Asymmetric profiles (distinct `tx`/`rx`) thus run a
    /// different grammar per direction on every leg.
    ///
    /// # Errors
    ///
    /// I/O errors resolving `upstream`.
    pub fn from_endpoint(
        endpoint: &Endpoint,
        mode: GatewayMode,
        upstream: impl ToSocketAddrs,
    ) -> io::Result<Gateway> {
        let (down_rx, down_tx, up_rx, up_tx) = match mode {
            GatewayMode::Encode => (
                endpoint.clear_tx_service(),
                endpoint.clear_rx_service(),
                endpoint.rx_service(),
                endpoint.tx_service(),
            ),
            GatewayMode::Decode => (
                endpoint.tx_service(),
                endpoint.rx_service(),
                endpoint.clear_rx_service(),
                endpoint.clear_tx_service(),
            ),
        };
        Ok(Gateway {
            down_rx: Arc::clone(down_rx),
            down_tx: Arc::clone(down_tx),
            up_rx: Arc::clone(up_rx),
            up_tx: Arc::clone(up_tx),
            mode,
            upstream: resolve_upstream(upstream)?,
            metrics: Arc::new(Metrics::new()),
            outbound_cap: None,
            fingerprint: Some(endpoint.fingerprint()),
        })
    }

    /// Caps every relayed connection's outbound queues at `cap` bytes
    /// (builder; default [`crate::conn::DEFAULT_OUTBOUND_CAP`]) — see
    /// [`Relay::outbound_cap`] for the semantics. The `protoobf` binary
    /// exposes this as `--backpressure BYTES`.
    pub fn with_outbound_cap(mut self, cap: usize) -> Gateway {
        self.outbound_cap = Some(cap);
        self
    }

    /// The gateway's live counters.
    pub fn metrics(&self) -> &Metrics {
        self.metrics.as_ref()
    }

    /// The gateway's whole observable state as a [`Telemetry`] registry:
    /// the shared metrics block plus every distinct codec service of the
    /// two relay legs (symmetric gateways collapse to their two unique
    /// services via the registry's `Arc`-identity dedup). This is what
    /// the admin endpoint serves; it stays live while the gateway runs —
    /// scrapes see current counters, not a snapshot.
    pub fn telemetry(&self) -> Telemetry {
        let mut t = Telemetry::new(Arc::clone(&self.metrics));
        t.register_service("down_rx", &self.down_rx);
        t.register_service("down_tx", &self.down_tx);
        t.register_service("up_rx", &self.up_rx);
        t.register_service("up_tx", &self.up_tx);
        t
    }

    /// Which side of the obfuscated wire this gateway faces.
    pub fn mode(&self) -> GatewayMode {
        self.mode
    }

    /// The profile derivation fingerprint (`None` for the legacy
    /// [`Gateway::new`] construction). Operators compare this across the
    /// pair — equal fingerprints mean both sides derived identical
    /// stacks; a key mismatch is caught here, before any traffic flows.
    pub fn fingerprint(&self) -> Option<Fingerprint> {
        self.fingerprint
    }

    /// Services of the accepted ("down") leg, `(rx, tx)`.
    pub fn down_services(&self) -> LegServices<'_> {
        LegServices { rx: &self.down_rx, tx: &self.down_tx }
    }

    /// Services of the dialed upstream ("up") leg, `(rx, tx)`.
    pub fn up_services(&self) -> LegServices<'_> {
        LegServices { rx: &self.up_rx, tx: &self.up_tx }
    }

    /// Accepts and relays connections until `shutdown` is raised (or
    /// `cfg.accept_limit` is reached and the last relay drains). Each
    /// accepted connection dials one upstream connection.
    ///
    /// # Errors
    ///
    /// Listener-level failures only; per-connection errors are counted in
    /// [`Gateway::metrics`].
    pub fn serve(
        &self,
        listener: TcpListener,
        cfg: &LoopConfig,
        shutdown: &AtomicBool,
    ) -> io::Result<()> {
        evloop::serve(listener, cfg, shutdown, self.metrics.as_ref(), |down, peer| {
            let up = TcpStream::connect_timeout(&self.upstream, UPSTREAM_DIAL_TIMEOUT)
                .map_err(TransportError::Io)?;
            up.set_nonblocking(true).map_err(TransportError::Io)?;
            let _ = up.set_nodelay(true);
            let relay =
                Relay::new(down, up, self.down_services(), self.up_services(), &self.metrics)?
                    .with_token(peer_token(&peer));
            Ok(match self.outbound_cap {
                Some(cap) => relay.outbound_cap(cap),
                None => relay,
            })
        })
    }
}

fn resolve_upstream(upstream: impl ToSocketAddrs) -> io::Result<SocketAddr> {
    upstream.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "upstream resolves to no address")
    })
}

//! # protoobf-transport
//!
//! Stage 6 of the pipeline — **Transport**: carrying obfuscated traffic
//! between real endpoints, the paper's deployment model of a pair of
//! obfuscation gateways sitting on the wire between an unmodified client
//! and server.
//!
//! ```text
//!  client ──clear──▶ [encode gateway] ──obfuscated──▶ [decode gateway] ──clear──▶ server
//!         ◀──clear── (responses follow the reverse path) ◀──clear──
//! ```
//!
//! The crate is built from three layers, each usable on its own:
//!
//! * [`conn::Conn`] — a **sans-io connection state machine**: feed it raw
//!   transport bytes ([`conn::Conn::feed_inbound`]), poll decoded messages
//!   ([`conn::Conn::poll_inbound`]), queue outbound messages
//!   ([`conn::Conn::send`]) and drain the encoded bytes
//!   ([`conn::Conn::poll_outbound`]). It owns no socket: any transport —
//!   TCP, the in-memory [`duplex`] pipes, a fuzzer — can drive it. Each
//!   `Conn` holds one pooled parser and one pooled serializer checked out
//!   of a shared [`protoobf_core::CodecService`] for its whole lifetime,
//!   so one compiled plan serves every connection and steady-state
//!   per-message work is allocation-free.
//! * [`evloop`] — a **non-blocking event loop** over `std::net` sockets
//!   (the build environment has no async runtime; none is needed):
//!   thread-per-core workers each accept and drive their own set of
//!   sessions. On Linux the workers get true kernel readiness from
//!   [`sys`] — a dependency-free raw-syscall epoll shim (edge-triggered,
//!   O(1) idle wakes at any connection count); everywhere else, and
//!   under `PROTOOBF_EVLOOP=scan`, they fall back to `try`-style
//!   readiness scanning with exponential idle backoff. Accepts are
//!   capped per wake ([`evloop::LoopConfig::accept_burst`]) so a
//!   connect flood cannot starve established sessions, and every
//!   session's outbound queue is capped
//!   ([`conn::Conn::outbound_cap`]) so a slow reader stalls its own
//!   stream instead of growing gateway memory.
//! * [`gateway::Gateway`] — the obfuscating relay: the ingress side parses
//!   obfuscated frames into clear messages, the egress side re-serializes
//!   clear messages into obfuscated frames, transcoding through the shared
//!   plain specification ([`protoobf_core::Message::transcode_into`],
//!   which runs a compiled plan-level copy program shared per codec
//!   pairing — the whole steady-state relay loop allocates nothing).
//!
//! [`metrics::Metrics`] instruments all of it — counters plus a
//! lock-free log-bucketed wake-latency histogram
//! ([`metrics::LatencyHistogram`], p50/p95/p99) and edge-detected
//! backpressure stall counts; [`duplex`] provides the in-memory
//! transport used by the differential tests.
//!
//! Deployments configure the whole stack through a
//! [`protoobf_core::profile::Profile`]: [`gateway::Gateway::from_endpoint`]
//! wires a (possibly **asymmetric** — distinct request/response grammars
//! per direction) gateway from a compiled endpoint, and
//! [`conn::Conn::initiator`] / [`conn::Conn::responder`] do the same for
//! natively obfuscated peers. Both sides of a deployment hold copies of
//! one profile file and verify their derivations agree by comparing
//! fingerprints before sending traffic.

// The crate's unsafe surface (the raw-syscall epoll shim in [`sys`])
// must stay explicit and documented: every unsafe operation sits in its
// own block with a SAFETY comment, even inside unsafe fns.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)]
#![warn(missing_debug_implementations)]

pub mod admin;
pub mod conn;
pub mod duplex;
pub mod error;
pub mod evloop;
pub mod gateway;
pub mod metrics;
pub mod sys;
pub mod tunnel;

pub use admin::{serve_admin, AdminConn};
pub use conn::{Conn, ConnState};
pub use error::TransportError;
pub use evloop::{serve, Drive, LoopConfig, Session};
pub use gateway::{Echo, Gateway, GatewayMode, LegServices, Relay, Responder};
pub use metrics::{peer_token, Metrics, MetricsSnapshot, Telemetry};
pub use tunnel::{spawn_reader, wake_pair, PayloadBuf, TunnelSession};

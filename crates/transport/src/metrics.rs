//! Transport observability — now a re-export of the unified
//! [`protoobf_core::telemetry`] module.
//!
//! The counters and histograms started life here, private to the
//! transport crate. The telemetry plane hoisted them into core so one
//! [`Telemetry`] registry can aggregate transport [`Metrics`] and
//! [`protoobf_core::service::ServiceStats`] without a dependency
//! cycle; this module keeps every existing `crate::metrics::*` path
//! compiling unchanged.

pub use protoobf_core::telemetry::{
    format_token, peer_token, EventKind, FlightEvent, FlightRecorder, HistogramSnapshot,
    LatencyHistogram, Metrics, MetricsSnapshot, StageSnapshot, StageTimer, StageTimers,
    StagesSnapshot, Telemetry, FLIGHT_RECORDER_CAPACITY, HISTOGRAM_BUCKETS, STAGE_SAMPLE_PERIOD,
};

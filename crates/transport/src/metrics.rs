//! Transport observability: lock-free counters shared by every worker
//! thread of an event loop / gateway, snapshotted for tuning.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative transport counters. All fields are relaxed atomics — cheap
/// enough for per-chunk increments on the hot path. Share by reference
/// (the event loop takes `&Metrics`) or wrap in an `Arc` for reporting
/// threads.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted by the event loop.
    pub accepted: AtomicU64,
    /// Accept-time failures (socket setup, upstream dial, handshake).
    pub accept_errors: AtomicU64,
    /// Sessions that finished cleanly.
    pub closed: AtomicU64,
    /// Sessions torn down by a typed transport error (hostile frames,
    /// socket failures).
    pub failed: AtomicU64,
    /// Messages decoded from transport bytes.
    pub messages_in: AtomicU64,
    /// Messages re-encoded onto transport bytes (relay: after transcode).
    pub messages_out: AtomicU64,
    /// Messages transcoded between codecs (compiled copy-program runs on
    /// the gateway relay / echo hot path). For a healthy relay this
    /// tracks `messages_in`; a lag means messages decoded but not yet
    /// re-expressed.
    pub transcodes: AtomicU64,
    /// Raw bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Raw bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// Idle backoff naps taken by event-loop workers (high and climbing
    /// while traffic flows = workers starved of readiness, consider more
    /// workers; high while idle = normal).
    pub idle_naps: AtomicU64,
    /// Cumulative microseconds spent in idle backoff sleeps — with
    /// [`Metrics::idle_naps`], the full shape of the backoff envelope
    /// (many short naps vs. few capped ones).
    pub idle_nap_micros: AtomicU64,
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    pub(crate) fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            messages_in: self.messages_in.load(Ordering::Relaxed),
            messages_out: self.messages_out.load(Ordering::Relaxed),
            transcodes: self.transcodes.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            idle_naps: self.idle_naps.load(Ordering::Relaxed),
            idle_nap_micros: self.idle_nap_micros.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of [`Metrics`], from [`Metrics::snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub accepted: u64,
    pub accept_errors: u64,
    pub closed: u64,
    pub failed: u64,
    pub messages_in: u64,
    pub messages_out: u64,
    pub transcodes: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub idle_naps: u64,
    pub idle_nap_micros: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conns {} accepted / {} closed / {} failed ({} accept errors); \
             msgs {} in / {} transcoded / {} out; bytes {} in / {} out; \
             {} idle naps ({} µs)",
            self.accepted,
            self.closed,
            self.failed,
            self.accept_errors,
            self.messages_in,
            self.transcodes,
            self.messages_out,
            self.bytes_in,
            self.bytes_out,
            self.idle_naps,
            self.idle_nap_micros
        )
    }
}

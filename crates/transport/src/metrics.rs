//! Transport observability: lock-free counters and latency histograms
//! shared by every worker thread of an event loop / gateway, snapshotted
//! for tuning.

use std::sync::atomic::{AtomicU64, Ordering};

/// Log-bucketed bucket count of [`LatencyHistogram`]: bucket `i` holds
/// values whose bit length is `i` (bucket 0 is exactly zero, bucket 1 is
/// 1, bucket 2 is 2–3, ... bucket 39 is everything ≥ 2³⁸ µs ≈ 76 h).
/// Forty buckets span nanoscale to absurd with ~2× resolution — plenty
/// for p50/p95/p99 tuning.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A lock-free log₂-bucketed latency histogram. Recording is one relaxed
/// `fetch_add` — cheap enough for the event loop's per-wake hot path —
/// and percentiles are computed from a snapshot, so readers never block
/// writers.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// The bucket index a value lands in: its bit length, clamped to the
    /// last bucket.
    pub fn bucket_of(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The largest value bucket `i` can hold (the value percentiles
    /// report): `0` for bucket 0, `2^i - 1` for the rest, `u64::MAX` for
    /// the clamp bucket.
    pub fn bucket_ceiling(i: usize) -> u64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one value (relaxed; never blocks, never allocates).
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

/// A frozen [`LatencyHistogram`], from [`LatencyHistogram::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Raw per-bucket counts; see [`LatencyHistogram::bucket_of`] for the
    /// boundaries.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The value at percentile `p` (0–100): the ceiling of the first
    /// bucket whose cumulative count reaches `p`% of the total, i.e. an
    /// upper bound within one 2× bucket of the true percentile. Zero on
    /// an empty histogram.
    pub fn percentile(&self, p: u8) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // ceil(total * p / 100), saturating: the rank of the percentile.
        // At least 1 so p0 reports the smallest recorded value's bucket,
        // not an empty leading bucket.
        let rank = total.saturating_mul(u64::from(p.min(100))).div_ceil(100).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return LatencyHistogram::bucket_ceiling(i);
            }
        }
        LatencyHistogram::bucket_ceiling(HISTOGRAM_BUCKETS - 1)
    }

    /// Median upper bound, `percentile(50)`.
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// `percentile(95)`.
    pub fn p95(&self) -> u64 {
        self.percentile(95)
    }

    /// `percentile(99)`.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }
}

/// Cumulative transport counters. All fields are relaxed atomics — cheap
/// enough for per-chunk increments on the hot path. Share by reference
/// (the event loop takes `&Metrics`) or wrap in an `Arc` for reporting
/// threads.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted by the event loop.
    pub accepted: AtomicU64,
    /// Accept-time failures (socket setup, upstream dial, handshake).
    pub accept_errors: AtomicU64,
    /// Sessions that finished cleanly.
    pub closed: AtomicU64,
    /// Sessions torn down by a typed transport error (hostile frames,
    /// socket failures).
    pub failed: AtomicU64,
    /// Messages decoded from transport bytes.
    pub messages_in: AtomicU64,
    /// Messages re-encoded onto transport bytes (relay: after transcode).
    pub messages_out: AtomicU64,
    /// Messages transcoded between codecs (compiled copy-program runs on
    /// the gateway relay / echo hot path). For a healthy relay this
    /// tracks `messages_in`; a lag means messages decoded but not yet
    /// re-expressed.
    pub transcodes: AtomicU64,
    /// Raw bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Raw bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// Idle backoff naps taken by event-loop workers on the readiness-
    /// scan fallback path (the epoll path sleeps in the kernel instead
    /// and never naps). High and climbing while traffic flows = workers
    /// starved of readiness, consider more workers; high while idle =
    /// normal.
    pub idle_naps: AtomicU64,
    /// Cumulative microseconds spent in idle backoff sleeps — with
    /// [`Metrics::idle_naps`], the full shape of the backoff envelope
    /// (many short naps vs. few capped ones).
    pub idle_nap_micros: AtomicU64,
    /// Wake-servicing latency in microseconds: for every event-loop wake
    /// that found work, the time from discovering readiness to having
    /// driven every ready session back to idle. The percentiles bound
    /// how long a ready connection waits for its worker — the C10K
    /// health metric (an O(n) readiness scan shows up here long before
    /// throughput collapses).
    pub wake_latency: LatencyHistogram,
    /// Stalls where a session's outbound cap paused its ingestion (the
    /// relay/echo read gate closed mid-pass; see
    /// [`crate::error::TransportError::Backpressure`]). Edge-detected: a
    /// stall spanning many drives counts once.
    pub backpressure_events: AtomicU64,
}

impl Metrics {
    /// Creates zeroed counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    pub(crate) fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            messages_in: self.messages_in.load(Ordering::Relaxed),
            messages_out: self.messages_out.load(Ordering::Relaxed),
            transcodes: self.transcodes.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            idle_naps: self.idle_naps.load(Ordering::Relaxed),
            idle_nap_micros: self.idle_nap_micros.load(Ordering::Relaxed),
            wake_latency: self.wake_latency.snapshot(),
            backpressure_events: self.backpressure_events.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of [`Metrics`], from [`Metrics::snapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub accepted: u64,
    pub accept_errors: u64,
    pub closed: u64,
    pub failed: u64,
    pub messages_in: u64,
    pub messages_out: u64,
    pub transcodes: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub idle_naps: u64,
    pub idle_nap_micros: u64,
    /// Wake-servicing latency distribution (µs); see
    /// [`Metrics::wake_latency`].
    pub wake_latency: HistogramSnapshot,
    pub backpressure_events: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conns {} accepted / {} closed / {} failed ({} accept errors); \
             msgs {} in / {} transcoded / {} out; bytes {} in / {} out; \
             {} idle naps ({} µs); {} backpressure events; \
             wake latency p50/p95/p99 {}/{}/{} µs over {} wakes",
            self.accepted,
            self.closed,
            self.failed,
            self.accept_errors,
            self.messages_in,
            self.transcodes,
            self.messages_out,
            self.bytes_in,
            self.bytes_out,
            self.idle_naps,
            self.idle_nap_micros,
            self.backpressure_events,
            self.wake_latency.p50(),
            self.wake_latency.p95(),
            self.wake_latency.p99(),
            self.wake_latency.count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented bucket boundaries, pinned: bucket 0 is exactly 0,
    /// bucket i covers [2^(i-1), 2^i - 1], and everything ≥ 2^38 lands in
    /// the clamp bucket.
    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(LatencyHistogram::bucket_of(lo), i, "lower edge of bucket {i}");
            assert_eq!(LatencyHistogram::bucket_of(hi), i, "upper edge of bucket {i}");
            assert_eq!(LatencyHistogram::bucket_ceiling(i), hi);
        }
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_ceiling(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every representable value has a bucket and its ceiling bounds it.
        for v in [0u64, 1, 2, 5, 50, 1600, 123_456, 1 << 37, 1 << 38, u64::MAX] {
            let b = LatencyHistogram::bucket_of(v);
            assert!(v <= LatencyHistogram::bucket_ceiling(b), "value {v} above its ceiling");
        }
    }

    #[test]
    fn histogram_percentiles_report_bucket_ceilings() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(40); // bucket 6 (32..63), ceiling 63
        }
        for _ in 0..10 {
            h.record(5000); // bucket 13 (4096..8191), ceiling 8191
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.p50(), 63);
        assert_eq!(snap.percentile(90), 63);
        assert_eq!(snap.p95(), 8191);
        assert_eq!(snap.p99(), 8191);
        assert_eq!(snap.percentile(0), 63, "p0 reports the first non-empty bucket");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
    }

    #[test]
    fn display_includes_percentiles() {
        let m = Metrics::new();
        m.wake_latency.record(100);
        let rendered = m.snapshot().to_string();
        assert!(rendered.contains("wake latency"), "{rendered}");
        assert!(rendered.contains("over 1 wakes"), "{rendered}");
    }
}

//! The dependency-free HTTP admin plane: `/metrics`, `/events`,
//! `/health` served by [`AdminConn`] — an ordinary [`Session`] driven by
//! the *same* event loop machinery as the data plane (pure `std::net` +
//! [`crate::sys`] kernel readiness; no HTTP library, no async runtime).
//!
//! The protocol subset is deliberately tiny: read one request head
//! (bounded; everything past the blank line is ignored), answer one
//! `GET`, close. That is exactly what `curl`, Prometheus scrapers and
//! `bash /dev/tcp` probes do, and it keeps the admin plane free of
//! request-parsing attack surface — an oversized or malformed head gets
//! a one-line error response and the socket is closed.
//!
//! [`serve_admin`] runs a single-worker [`evloop::serve`] over a shared
//! [`Telemetry`] registry. The admin plane gets its own [`Metrics`]
//! block (scrapes must not perturb the data-plane counters they report),
//! so `/events` even records the scrapers' own connection lifecycle.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use crate::error::TransportError;
use crate::evloop::{self, Drive, LoopConfig, Session};
use crate::metrics::{peer_token, Metrics, Telemetry};

/// Upper bound on a request head (request line + headers). Anything
/// longer is hostile or lost; the connection gets a 431 and closes.
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Read buffer for request heads; heads are tiny, one read usually
/// completes the request.
const READ_CHUNK: usize = 1024;

#[derive(Debug)]
enum AdminState {
    /// Accumulating the request head (until `\r\n\r\n` or the cap).
    Reading,
    /// Writing `response[written..]`, then done.
    Writing,
}

/// One admin-plane HTTP connection; see the [module docs](self).
#[derive(Debug)]
pub struct AdminConn {
    stream: TcpStream,
    telemetry: Arc<Telemetry>,
    request: Vec<u8>,
    response: Vec<u8>,
    written: usize,
    state: AdminState,
    token: u64,
}

impl AdminConn {
    /// Wraps an accepted (non-blocking) socket that will receive one
    /// HTTP request against `telemetry`.
    pub fn new(stream: TcpStream, peer: SocketAddr, telemetry: Arc<Telemetry>) -> AdminConn {
        AdminConn {
            stream,
            telemetry,
            request: Vec::with_capacity(READ_CHUNK),
            response: Vec::new(),
            written: 0,
            state: AdminState::Reading,
            token: peer_token(&peer),
        }
    }

    /// Routes a complete request head to a response. Split from `drive`
    /// so tests can exercise routing without sockets.
    fn respond(&mut self) {
        let head = String::from_utf8_lossy(&self.request);
        let mut parts = head.lines().next().unwrap_or("").split_whitespace();
        let method = parts.next().unwrap_or("");
        // Strip any query string: the endpoints take no parameters.
        let path = parts.next().unwrap_or("").split('?').next().unwrap_or("");
        self.response = if method != "GET" {
            http_response(405, "Method Not Allowed", "text/plain", "only GET is served\n")
        } else {
            match path {
                "/metrics" => http_response(
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    &self.telemetry.render_prometheus(),
                ),
                "/events" => {
                    http_response(200, "OK", "text/plain", &self.telemetry.render_events())
                }
                "/health" => http_response(200, "OK", "text/plain", "ok\n"),
                _ => http_response(
                    404,
                    "Not Found",
                    "text/plain",
                    "endpoints: /metrics /events /health\n",
                ),
            }
        };
        self.state = AdminState::Writing;
    }
}

/// Renders a minimal HTTP/1.0-style response (explicit `Content-Length`,
/// `Connection: close` — no keep-alive state to manage on the event
/// loop).
fn http_response(code: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    let _ = write!(
        out,
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    out.extend_from_slice(body.as_bytes());
    out
}

impl Session for AdminConn {
    fn drive(&mut self) -> Result<Drive, TransportError> {
        let mut progress = false;
        if matches!(self.state, AdminState::Reading) {
            let mut buf = [0u8; READ_CHUNK];
            loop {
                match self.stream.read(&mut buf) {
                    Ok(0) => {
                        // EOF before a complete head: nothing to answer.
                        return Ok(Drive::Done);
                    }
                    Ok(n) => {
                        progress = true;
                        self.request.extend_from_slice(&buf[..n]);
                        if self.request.windows(4).any(|w| w == b"\r\n\r\n")
                            || self.request.windows(2).any(|w| w == b"\n\n")
                        {
                            self.respond();
                            break;
                        }
                        if self.request.len() > MAX_REQUEST_HEAD {
                            self.response = http_response(
                                431,
                                "Request Header Fields Too Large",
                                "text/plain",
                                "request head too large\n",
                            );
                            self.state = AdminState::Writing;
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        return Ok(if progress { Drive::Progress } else { Drive::Idle });
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(TransportError::Io(e)),
                }
            }
        }
        while self.written < self.response.len() {
            match self.stream.write(&self.response[self.written..]) {
                Ok(0) => return Err(TransportError::Io(io::Error::from(io::ErrorKind::WriteZero))),
                Ok(n) => {
                    self.written += n;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(if progress { Drive::Progress } else { Drive::Idle });
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        Ok(Drive::Done)
    }

    fn sockets<'a>(&'a self, out: &mut Vec<&'a TcpStream>) {
        out.push(&self.stream);
    }

    fn token(&self) -> u64 {
        self.token
    }
}

/// Serves the admin endpoint on `listener` until `shutdown` is raised:
/// one event-loop worker (scrapes are rare and tiny), sessions built
/// over the shared `telemetry`. Blocks; callers run it on a spare
/// thread next to the data plane, sharing the same shutdown flag.
///
/// # Errors
///
/// Listener-level failures only, as with [`evloop::serve`].
pub fn serve_admin(
    listener: TcpListener,
    telemetry: Arc<Telemetry>,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let cfg = LoopConfig { workers: 1, ..LoopConfig::default() };
    // The admin plane's own lifecycle metrics, separate from the data
    // plane's — a scrape must not show up in the counters it reports.
    let metrics = Metrics::new();
    evloop::serve(listener, &cfg, shutdown, &metrics, move |stream, peer| {
        Ok(AdminConn::new(stream, peer, Arc::clone(&telemetry)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_response_shape() {
        let r = http_response(200, "OK", "text/plain", "hello\n");
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 6\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhello\n"), "{text}");
    }
}

//! Covert-tunnel transport: pump a local byte stream through cover
//! messages over an ordinary framed connection.
//!
//! [`TunnelSession`] is a regular event-loop [`Session`]: it reads payload
//! from a thread-safe [`PayloadBuf`] (typically fed from stdin by
//! [`spawn_reader`]), folds it into sampled cover messages with a
//! [`protoobf_core::tunnel::TunnelEncoder`], and sends them through a
//! sans-io [`Conn`] — so tunnels ride the existing epoll loop, outbound
//! backpressure caps, pooled codec sessions and telemetry. The reverse
//! direction decodes inbound cover messages back into payload bytes and
//! writes them to a local sink (typically stdout), counting goodput in
//! [`Metrics::payload_bytes_in`] / [`Metrics::payload_bytes_out`].
//!
//! The epoll backend only re-drives a session on *socket* readiness, and
//! stdin is not a socket — so a feeder thread blocking on the local
//! source pairs with a loopback **wake pipe** ([`wake_pair`]): after
//! appending payload it writes one byte to the pipe's send half, and the
//! session lists the receive half among its [`Session::sockets`], turning
//! local payload arrival into an ordinary readiness event.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use protoobf_core::service::CodecService;
use protoobf_core::tunnel::{TunnelDecoder, TunnelEncoder, TunnelError};

use crate::conn::{Conn, ConnState};
use crate::error::TransportError;
use crate::evloop::{Drive, Session};
use crate::gateway::{flush_from, read_into};
use crate::metrics::{EventKind, Metrics};

/// Default byte cap of a [`PayloadBuf`]: a local source that outruns the
/// tunnel's (deliberately modest) goodput blocks at the buffer instead of
/// growing process memory without bound.
pub const DEFAULT_PAYLOAD_BUF_CAP: usize = 1 << 20;

/// How many queued-but-unencoded payload bytes the session tolerates
/// before it stops pulling from its [`PayloadBuf`] for a pass.
const ENCODER_PENDING_CAP: usize = 256 * 1024;

#[derive(Debug, Default)]
struct PayloadInner {
    data: VecDeque<u8>,
    eof: bool,
}

/// A bounded, thread-safe byte queue between a blocking local source
/// (stdin reader thread) and a non-blocking tunnel session. `push` blocks
/// while the buffer is at capacity — backpressure propagates to the local
/// producer the same way the outbound cap propagates to the socket.
#[derive(Debug)]
pub struct PayloadBuf {
    cap: usize,
    inner: Mutex<PayloadInner>,
    can_push: Condvar,
}

impl Default for PayloadBuf {
    fn default() -> Self {
        PayloadBuf::with_cap(DEFAULT_PAYLOAD_BUF_CAP)
    }
}

impl PayloadBuf {
    /// A shareable buffer with the default cap.
    pub fn new() -> Arc<PayloadBuf> {
        Arc::new(PayloadBuf::default())
    }

    /// A buffer holding at most `cap` bytes (clamped to at least one).
    pub fn with_cap(cap: usize) -> PayloadBuf {
        PayloadBuf {
            cap: cap.max(1),
            inner: Mutex::new(PayloadInner::default()),
            can_push: Condvar::new(),
        }
    }

    /// Appends payload, blocking while the buffer is at capacity. Bytes
    /// pushed after [`close`](PayloadBuf::close) are discarded.
    pub fn push(&self, mut bytes: &[u8]) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while !bytes.is_empty() && !inner.eof {
            while inner.data.len() >= self.cap && !inner.eof {
                inner = self.can_push.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
            if inner.eof {
                break;
            }
            let room = self.cap - inner.data.len();
            let take = room.min(bytes.len());
            inner.data.extend(&bytes[..take]);
            bytes = &bytes[take..];
        }
    }

    /// Declares the local source finished; unblocks any waiting pusher.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.eof = true;
        self.can_push.notify_all();
    }

    /// Moves up to `max` bytes into `out`; returns how many moved.
    pub fn pop_into(&self, out: &mut Vec<u8>, max: usize) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let take = inner.data.len().min(max);
        out.extend(inner.data.drain(..take));
        if take > 0 {
            self.can_push.notify_all();
        }
        take
    }

    /// True once the source closed and every byte was popped.
    pub fn is_drained(&self) -> bool {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.eof && inner.data.is_empty()
    }
}

/// A loopback TCP pair `(receive, send)` used as a wake pipe: the receive
/// half is non-blocking (listed among a session's sockets so epoll sees
/// it), the send half is handed to the feeder thread.
pub fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let send = TcpStream::connect(addr)?;
    let (recv, _) = listener.accept()?;
    recv.set_nonblocking(true)?;
    Ok((recv, send))
}

/// Spawns a detached thread that drains the blocking `source` into `buf`,
/// poking one byte down `wake` after every chunk so an epoll-driven
/// session re-drives. On source EOF (or error) the buffer is closed and a
/// final wake is sent. The thread exits on its own; it is deliberately
/// not joined — a source that never ends (an interactive stdin) must not
/// keep the process alive once the tunnel is done.
pub fn spawn_reader(
    mut source: impl Read + Send + 'static,
    buf: Arc<PayloadBuf>,
    mut wake: Option<TcpStream>,
) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let mut chunk = [0u8; 8192];
        loop {
            match source.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    buf.push(&chunk[..n]);
                    if let Some(w) = &mut wake {
                        if w.write_all(&[1]).is_err() {
                            wake = None; // session gone; keep draining
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        buf.close();
        if let Some(w) = &mut wake {
            let _ = w.write_all(&[1]);
            let _ = w.shutdown(Shutdown::Write);
        }
    })
}

/// One covert tunnel over one framed connection: an ordinary event-loop
/// session gluing a local payload source/sink to a [`Conn`] through the
/// tunnel codec. See the module docs for the data flow and wake-pipe
/// rationale.
pub struct TunnelSession<'s, W: Write + Send> {
    stream: TcpStream,
    wake_rx: Option<TcpStream>,
    conn: Conn<'s>,
    enc: TunnelEncoder<'s>,
    dec: TunnelDecoder<'s>,
    source: Arc<PayloadBuf>,
    sink: W,
    read_buf: Vec<u8>,
    scratch: Vec<u8>,
    source_finished: bool,
    sent_shutdown: bool,
    exit_on_eof: bool,
    gated: bool,
    metrics: &'s Metrics,
    token: u64,
}

// Manual impl: the payload sink `W` is any `Write` and need not be
// `Debug`; everything identifying the session is printed.
impl<W: Write + Send> std::fmt::Debug for TunnelSession<'_, W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TunnelSession")
            .field("token", &self.token)
            .field("conn", &self.conn)
            .field("source_finished", &self.source_finished)
            .field("sent_shutdown", &self.sent_shutdown)
            .field("exit_on_eof", &self.exit_on_eof)
            .field("gated", &self.gated)
            .finish_non_exhaustive()
    }
}

impl<'s, W: Write + Send> TunnelSession<'s, W> {
    /// Wraps a connected (non-blocking) socket: inbound frames parse with
    /// `rx`'s codec and feed the decoder, outbound cover messages sample
    /// from `tx`'s codec (deterministically per `seed`). Payload flows
    /// `source` → covers → socket and socket → covers → `sink`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Tunnel`] when either codec's specification has
    /// no carrier slots at all.
    pub fn new(
        stream: TcpStream,
        rx: &'s CodecService,
        tx: &'s CodecService,
        source: Arc<PayloadBuf>,
        sink: W,
        seed: u64,
        metrics: &'s Metrics,
    ) -> Result<TunnelSession<'s, W>, TransportError> {
        let enc = TunnelEncoder::new(tx.codec(), seed)?;
        let dec = TunnelDecoder::new(rx.codec())?;
        Ok(TunnelSession {
            stream,
            wake_rx: None,
            conn: Conn::new(rx, tx),
            enc,
            dec,
            source,
            sink,
            read_buf: vec![0u8; 16 * 1024],
            scratch: Vec::new(),
            source_finished: false,
            sent_shutdown: false,
            exit_on_eof: false,
            gated: false,
            metrics,
            token: 0,
        })
    }

    /// Attaches the receive half of a [`wake_pair`] (builder): payload
    /// arrival becomes a socket readiness event on the epoll backend.
    pub fn with_wake(mut self, wake_rx: TcpStream) -> Self {
        self.wake_rx = Some(wake_rx);
        self
    }

    /// Finish once both directions complete (builder): our stream fully
    /// sent *and* the peer's stream fully delivered. Without it the
    /// session ends only when the peer closes.
    pub fn exit_on_eof(mut self, yes: bool) -> Self {
        self.exit_on_eof = yes;
        self
    }

    /// Caps the outbound queue at `cap` bytes (builder; default
    /// [`crate::conn::DEFAULT_OUTBOUND_CAP`]). A full queue pauses cover
    /// production, which pauses payload pulls, which blocks the local
    /// producer — end-to-end backpressure.
    pub fn outbound_cap(mut self, cap: usize) -> Self {
        self.conn.set_outbound_cap(cap);
        self
    }

    /// Sets the flight-recorder token (builder).
    pub fn with_token(mut self, token: u64) -> Self {
        self.token = token;
        self
    }

    /// True once the peer's payload stream arrived whole.
    pub fn stream_complete(&self) -> bool {
        self.dec.is_complete()
    }

    fn drain_wake(&mut self) -> bool {
        let Some(w) = &mut self.wake_rx else { return false };
        let mut gone = false;
        let mut woke = false;
        let mut b = [0u8; 64];
        loop {
            match w.read(&mut b) {
                Ok(0) => {
                    gone = true;
                    break;
                }
                Ok(_) => woke = true,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    gone = true;
                    break;
                }
            }
        }
        if gone {
            self.wake_rx = None;
        }
        woke || gone
    }
}

impl<W: Write + Send> Session for TunnelSession<'_, W> {
    fn drive(&mut self) -> Result<Drive, TransportError> {
        let mut progress = self.drain_wake();

        // Inbound: socket bytes → frames → decoder → local sink.
        progress |= read_into(&mut self.stream, &mut self.conn, &mut self.read_buf, self.metrics)?;
        loop {
            let parse_t = self.metrics.stages.parse.start();
            let Some(msg) = self.conn.poll_inbound()? else { break };
            self.metrics.stages.parse.finish(parse_t);
            Metrics::add(&self.metrics.messages_in, 1);
            self.dec.accept(msg)?;
            self.metrics.frame_bytes_in.record(self.conn.last_inbound_frame_len() as u64);
            progress = true;
        }
        self.scratch.clear();
        let delivered = self.dec.take_ready(&mut self.scratch);
        if delivered > 0 {
            self.sink.write_all(&self.scratch)?;
            let _ = self.sink.flush();
            Metrics::add(&self.metrics.payload_bytes_in, delivered as u64);
            progress = true;
        }

        // Outbound: local source → encoder → cover messages → socket.
        if self.enc.pending_payload() < ENCODER_PENDING_CAP {
            self.scratch.clear();
            let pulled = self.source.pop_into(&mut self.scratch, ENCODER_PENDING_CAP);
            if pulled > 0 {
                self.enc.push(&self.scratch);
                progress = true;
            }
        }
        if !self.source_finished && self.source.is_drained() {
            self.enc.finish();
            self.source_finished = true;
            progress = true;
        }
        while self.conn.can_send() {
            let Some(frame) = self.enc.next_cover()? else { break };
            let serialize_t = self.metrics.stages.serialize.start();
            self.conn.send(&frame.message)?;
            self.metrics.stages.serialize.finish(serialize_t);
            Metrics::add(&self.metrics.messages_out, 1);
            Metrics::add(&self.metrics.payload_bytes_out, frame.payload_len as u64);
            self.metrics.frame_bytes_out.record(self.conn.last_outbound_frame_len() as u64);
            progress = true;
        }
        let engaged = !self.conn.can_send();
        progress |= flush_from(&mut self.stream, &mut self.conn, self.metrics)?;
        if engaged && !self.gated {
            Metrics::add(&self.metrics.backpressure_events, 1);
            self.metrics.recorder.record(
                EventKind::Backpressure,
                self.token,
                self.conn.outbound_len() as u64,
            );
        }
        self.gated = engaged;

        // Half-close once our whole stream (incl. FIN) is on the wire.
        if !self.sent_shutdown
            && self.source_finished
            && self.enc.is_drained()
            && !self.conn.has_outbound()
        {
            let _ = self.stream.shutdown(Shutdown::Write);
            self.sent_shutdown = true;
            progress = true;
        }

        let peer_closed = self.conn.state() == ConnState::PeerClosed;
        if peer_closed && !self.dec.is_complete() {
            // The peer's write side ended mid-stream: bytes are gone.
            return Err(TransportError::Tunnel(TunnelError::Incomplete {
                delivered: self.dec.bytes_delivered(),
                expected: self.dec.total_expected(),
            }));
        }
        let local_done = self.sent_shutdown && !self.conn.has_outbound();
        let remote_done = self.dec.is_complete();
        if local_done && remote_done && (self.exit_on_eof || peer_closed) {
            return Ok(Drive::Done);
        }
        Ok(if progress { Drive::Progress } else { Drive::Idle })
    }

    fn sockets<'a>(&'a self, out: &mut Vec<&'a TcpStream>) {
        out.push(&self.stream);
        if let Some(w) = &self.wake_rx {
            out.push(w);
        }
    }

    fn token(&self) -> u64 {
        self.token
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoobf_core::graph::Boundary;
    use protoobf_core::value::TerminalKind;
    use protoobf_core::{Codec, CodecService, GraphBuilder};
    use std::net::TcpListener;

    fn pipe_spec_service() -> CodecService {
        let mut b = GraphBuilder::new("pipe");
        let root = b.root_sequence("m", Boundary::End);
        b.uint_be(root, "kind", 1);
        b.terminal(root, "blob", TerminalKind::Bytes, Boundary::End);
        CodecService::new(Codec::identity(&b.build().unwrap()))
    }

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn payload_buf_round_trips_and_drains() {
        let buf = PayloadBuf::new();
        buf.push(b"hello");
        buf.close();
        let mut out = Vec::new();
        assert_eq!(buf.pop_into(&mut out, 3), 3);
        assert!(!buf.is_drained());
        assert_eq!(buf.pop_into(&mut out, 64), 2);
        assert_eq!(out, b"hello");
        assert!(buf.is_drained());
    }

    #[test]
    fn two_sessions_tunnel_both_directions_over_tcp() {
        let svc = pipe_spec_service();
        let metrics = Metrics::new();
        let (sa, sb) = tcp_pair();

        let a_src = PayloadBuf::new();
        a_src.push(b"payload from a to b: the quick brown fox");
        a_src.close();
        let b_src = PayloadBuf::new();
        b_src.push(&[0u8; 3000]);
        b_src.close();

        let mut a_out = Vec::new();
        let mut b_out = Vec::new();
        {
            let mut a = TunnelSession::new(sa, &svc, &svc, a_src, &mut a_out, 1, &metrics)
                .unwrap()
                .exit_on_eof(true);
            let mut b = TunnelSession::new(sb, &svc, &svc, b_src, &mut b_out, 2, &metrics)
                .unwrap()
                .exit_on_eof(true);
            let mut a_done = false;
            let mut b_done = false;
            for _ in 0..10_000 {
                if !a_done && matches!(a.drive().unwrap(), Drive::Done) {
                    a_done = true;
                }
                if !b_done && matches!(b.drive().unwrap(), Drive::Done) {
                    b_done = true;
                }
                if a_done && b_done {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            assert!(a_done && b_done, "both sessions must finish");
        }
        assert_eq!(b_out, b"payload from a to b: the quick brown fox");
        assert_eq!(a_out, vec![0u8; 3000]);
        let snap = metrics.snapshot();
        assert_eq!(snap.payload_bytes_in, snap.payload_bytes_out);
        assert_eq!(snap.payload_bytes_in, (40 + 3000) as u64);
        assert!(snap.bytes_out > snap.payload_bytes_out, "cover overhead exists");
    }

    #[test]
    fn wake_pair_delivers_readiness() {
        let (recv, mut send) = wake_pair().unwrap();
        let buf = PayloadBuf::new();
        send.write_all(&[1]).unwrap();
        let mut b = [0u8; 8];
        // The non-blocking receive half sees the poke (retry for arrival).
        let mut got = 0;
        for _ in 0..100 {
            match (&recv).read(&mut b) {
                Ok(n) => {
                    got = n;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(1))
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert!(got > 0);
        drop(buf);
    }
}

//! The admin scrape plane against a live gateway chain: while an encode
//! gateway relays real traffic over loopback sockets, `/metrics`,
//! `/events` and `/health` are scraped over a real socket — exactly what
//! a Prometheus scraper (or `bash /dev/tcp`) does in production.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use protoobf_core::framing::{FrameReader, FrameWriter};
use protoobf_core::service::CodecService;
use protoobf_core::{Codec, Obfuscator};
use protoobf_protocols::modbus::{self, Function};
use protoobf_transport::{evloop, serve_admin, Echo, Gateway, GatewayMode, LoopConfig, Metrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARED_SEED: u64 = 0x0BF;
const MSGS: usize = 16;

fn obf_codec() -> Codec {
    Obfuscator::new(&modbus::request_graph()).seed(SHARED_SEED).max_per_node(2).obfuscate().unwrap()
}

/// One blocking HTTP request against the admin endpoint, the way curl
/// does it: connect, write the request, read to EOF.
fn http_get(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

/// Extracts the value of a Prometheus sample line (`name 42` → 42).
fn sample(body: &str, series: &str) -> Option<u64> {
    body.lines()
        .find(|l| l.split_whitespace().next() == Some(series))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[test]
fn admin_endpoint_serves_scrapes_while_the_gateway_relays() {
    let graph = modbus::request_graph();
    let clear = Codec::identity(&graph);

    let server_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server_addr = server_listener.local_addr().unwrap();
    let decode_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let decode_addr = decode_listener.local_addr().unwrap();
    let encode_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let encode_addr = encode_listener.local_addr().unwrap();
    let admin_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let admin_addr = admin_listener.local_addr().unwrap();

    let encode_gw = Gateway::new(&graph, obf_codec(), GatewayMode::Encode, decode_addr).unwrap();
    let decode_gw = Gateway::new(&graph, obf_codec(), GatewayMode::Decode, server_addr).unwrap();
    let server_svc = CodecService::new(Codec::identity(&graph));
    let server_metrics = Metrics::new();
    let telemetry = Arc::new(encode_gw.telemetry());

    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig { workers: 2, accept_limit: None, ..LoopConfig::default() };

    std::thread::scope(|scope| {
        let loops = [
            scope.spawn(|| {
                evloop::serve(server_listener, &cfg, &shutdown, &server_metrics, |s, _| {
                    Ok(Echo::new(s, &server_svc, &server_metrics))
                })
            }),
            scope.spawn(|| decode_gw.serve(decode_listener, &cfg, &shutdown)),
            scope.spawn(|| encode_gw.serve(encode_listener, &cfg, &shutdown)),
            scope.spawn(|| serve_admin(admin_listener, Arc::clone(&telemetry), &shutdown)),
        ];

        // /health answers before any data-plane traffic exists.
        let health = http_get(admin_addr, "GET /health HTTP/1.0\r\n\r\n");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        // Relay real traffic and keep the connection open across the
        // scrapes: the registry must report a *live* chain, not a
        // drained one.
        let stream = TcpStream::connect(encode_addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut writer = FrameWriter::new(&clear, &stream);
        let mut reader = FrameReader::new(&clear, &stream);
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..MSGS {
            let f = Function::ALL[i % Function::ALL.len()];
            let msg = modbus::build_request(&clear, f, &mut rng);
            let reference = clear.serialize(&msg).unwrap();
            writer.send_raw(&reference).unwrap();
            let echoed = reader.recv_raw().unwrap().expect("echo before EOF");
            assert_eq!(echoed, reference, "message {i} diverged through the chain");
        }

        // Mid-run /metrics scrape: the encode gateway has decoded the
        // requests AND their echoes by the time the last echo reached
        // the client.
        let metrics = http_get(admin_addr, "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.0 200"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        let msgs_in = sample(&metrics, "protoobf_messages_in_total").unwrap();
        assert!(
            msgs_in >= 2 * MSGS as u64,
            "encode gateway must have decoded requests + echoes, saw {msgs_in}\n{metrics}"
        );
        assert_eq!(sample(&metrics, "protoobf_accepted_total"), Some(1), "{metrics}");
        // The frame-shape histogram and the per-service series are live.
        assert!(metrics.contains("protoobf_frame_bytes_bucket"), "{metrics}");
        assert!(metrics.contains("service=\"down_rx\""), "{metrics}");
        assert!(metrics.contains("protoobf_stage_calls_total{stage=\"transcode\"}"), "{metrics}");

        // A second scrape additionally exposes the per-interval series
        // (delta since the scrape above).
        let again = http_get(admin_addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert!(again.contains("protoobf_wake_latency_interval_micros"), "{again}");

        // /events carries the client connection's accept, with a peer
        // token that decodes back to a loopback address.
        let events = http_get(admin_addr, "GET /events HTTP/1.0\r\n\r\n");
        assert!(events.starts_with("HTTP/1.0 200"), "{events}");
        assert!(events.contains("accept"), "{events}");
        assert!(events.contains("peer=127.0.0.1:"), "{events}");

        // Unknown paths and non-GET methods get one-line errors, and the
        // plane keeps serving afterwards.
        let missing = http_get(admin_addr, "GET /nope HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        let post = http_get(admin_addr, "POST /metrics HTTP/1.0\r\n\r\n");
        assert!(post.starts_with("HTTP/1.0 405"), "{post}");
        let still = http_get(admin_addr, "GET /health HTTP/1.0\r\n\r\n");
        assert!(still.starts_with("HTTP/1.0 200"), "{still}");

        drop(writer);
        drop(reader);
        drop(stream);
        shutdown.store(true, Ordering::Relaxed);
        for l in loops {
            l.join().unwrap().unwrap();
        }
    });

    // The flight recorder saw the whole lifecycle: accept and (after
    // shutdown) the close/shutdown edge of the relay.
    let events = telemetry.metrics().recorder.dump();
    assert!(events.iter().any(|e| e.kind.name() == "accept"), "{events:?}");
}

/// An oversized request head must be rejected without tearing down the
/// admin plane.
#[test]
fn oversized_request_heads_get_431_and_the_plane_survives() {
    let admin_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let admin_addr = admin_listener.local_addr().unwrap();
    let telemetry = Arc::new(protoobf_transport::Telemetry::new(Arc::new(Metrics::new())));
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let admin = scope.spawn(|| serve_admin(admin_listener, Arc::clone(&telemetry), &shutdown));

        let huge = format!("GET /metrics HTTP/1.0\r\nX-Junk: {}\r\n\r\n", "j".repeat(16 * 1024));
        let response = http_get(admin_addr, &huge);
        assert!(response.starts_with("HTTP/1.0 431"), "{response}");

        let ok = http_get(admin_addr, "GET /health HTTP/1.0\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200"), "{ok}");

        shutdown.store(true, Ordering::Relaxed);
        admin.join().unwrap().unwrap();
    });
}

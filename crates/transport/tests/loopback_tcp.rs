//! End-to-end gateway pair over real loopback sockets:
//!
//! ```text
//! clients ──clear──▶ encode gw ──obf──▶ decode gw ──clear──▶ echo server
//! ```
//!
//! 64 concurrent client connections round-trip framed messages through the
//! whole chain; every echoed wire must be byte-identical to the client's
//! own (single-threaded, deterministic) reference serialization. A hostile
//! client must take down only its own relay.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use protoobf_core::framing::{FrameReader, FrameWriter};
use protoobf_core::service::CodecService;
use protoobf_core::{Codec, Obfuscator};
use protoobf_protocols::modbus::{self, Function};
use protoobf_transport::{evloop, Echo, Gateway, GatewayMode, LoopConfig, Metrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARED_SEED: u64 = 0x0BF;
const CLIENTS: usize = 64;
const MSGS_PER_CLIENT: usize = 4;

fn obf_codec() -> Codec {
    Obfuscator::new(&modbus::request_graph()).seed(SHARED_SEED).max_per_node(2).obfuscate().unwrap()
}

/// Runs the echo server + gateway pair, calls `clients` against the
/// encode gateway's address, shuts everything down, and returns the two
/// gateways' final metric snapshots (encode, decode).
fn with_gateway_chain(
    clients: impl FnOnce(std::net::SocketAddr) + Send,
) -> (protoobf_transport::MetricsSnapshot, protoobf_transport::MetricsSnapshot) {
    let graph = modbus::request_graph();

    let server_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server_addr = server_listener.local_addr().unwrap();
    let decode_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let decode_addr = decode_listener.local_addr().unwrap();
    let encode_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let encode_addr = encode_listener.local_addr().unwrap();

    let encode_gw = Gateway::new(&graph, obf_codec(), GatewayMode::Encode, decode_addr).unwrap();
    let decode_gw = Gateway::new(&graph, obf_codec(), GatewayMode::Decode, server_addr).unwrap();
    let server_svc = CodecService::new(Codec::identity(&graph));
    let server_metrics = Metrics::new();

    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig { workers: 2, accept_limit: None, ..LoopConfig::default() };

    std::thread::scope(|scope| {
        let loops = [
            scope.spawn(|| {
                evloop::serve(server_listener, &cfg, &shutdown, &server_metrics, |s, _| {
                    Ok(Echo::new(s, &server_svc, &server_metrics))
                })
            }),
            scope.spawn(|| decode_gw.serve(decode_listener, &cfg, &shutdown)),
            scope.spawn(|| encode_gw.serve(encode_listener, &cfg, &shutdown)),
        ];
        clients(encode_addr);
        shutdown.store(true, Ordering::Relaxed);
        for l in loops {
            l.join().unwrap().unwrap();
        }
    });
    (encode_gw.metrics().snapshot(), decode_gw.metrics().snapshot())
}

#[test]
fn sixty_four_concurrent_connections_roundtrip_byte_identical() {
    let graph = modbus::request_graph();
    let clear = Codec::identity(&graph);

    let (encode_stats, decode_stats) = with_gateway_chain(|gateway_addr| {
        std::thread::scope(|scope| {
            for t in 0..CLIENTS {
                let clear = &clear;
                scope.spawn(move || {
                    let stream = TcpStream::connect(gateway_addr).unwrap();
                    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                    let mut writer = FrameWriter::new(clear, &stream);
                    let mut reader = FrameReader::new(clear, &stream);
                    let mut rng = StdRng::seed_from_u64(t as u64);
                    for i in 0..MSGS_PER_CLIENT {
                        let f = Function::ALL[(t + i) % Function::ALL.len()];
                        let msg = modbus::build_request(clear, f, &mut rng);
                        // Identity codecs are deterministic: the bytes we
                        // send ARE the single-threaded reference.
                        let reference = clear.serialize(&msg).unwrap();
                        writer.send_raw(&reference).unwrap();
                        let echoed = reader.recv_raw().unwrap().expect("echo before EOF");
                        assert_eq!(
                            echoed, reference,
                            "client {t} message {i}: echoed wire diverged from reference"
                        );
                    }
                });
            }
        });
    });

    assert_eq!(encode_stats.accepted as usize, CLIENTS);
    assert_eq!(decode_stats.accepted as usize, CLIENTS);
    let expect = (CLIENTS * MSGS_PER_CLIENT * 2) as u64; // requests + echoes
    assert_eq!(encode_stats.messages_in, expect);
    assert_eq!(decode_stats.messages_in, expect);
    assert_eq!(encode_stats.failed, 0, "no relay may fail: {encode_stats}");
    assert_eq!(decode_stats.failed, 0, "no relay may fail: {decode_stats}");
}

#[test]
fn hostile_client_fails_only_its_own_relay() {
    let graph = modbus::request_graph();
    let clear = Codec::identity(&graph);

    let (encode_stats, _) = with_gateway_chain(|gateway_addr| {
        // A client that speaks garbage: well-formed prefix, undecodable
        // body. Its relay must die with a typed error server-side; the
        // client observes EOF/reset, never a wedged gateway.
        {
            use std::io::{Read, Write};
            let mut stream = TcpStream::connect(gateway_addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
            let mut junk = 32u32.to_be_bytes().to_vec();
            junk.extend_from_slice(&[0xEE; 32]);
            stream.write_all(&junk).unwrap();
            let mut sink = Vec::new();
            // Read until the gateway drops us (0 bytes) or resets.
            let _ = stream.read_to_end(&mut sink);
        }

        // A well-behaved client right after must still be served.
        let stream = TcpStream::connect(gateway_addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut writer = FrameWriter::new(&clear, &stream);
        let mut reader = FrameReader::new(&clear, &stream);
        let mut rng = StdRng::seed_from_u64(5);
        let msg = modbus::build_request(&clear, Function::ReadHoldingRegisters, &mut rng);
        let reference = clear.serialize(&msg).unwrap();
        writer.send_raw(&reference).unwrap();
        assert_eq!(reader.recv_raw().unwrap().expect("echo"), reference);
    });

    assert!(encode_stats.failed >= 1, "hostile relay must be counted: {encode_stats}");
    assert!(encode_stats.messages_in >= 2, "good client served after hostile one");
}

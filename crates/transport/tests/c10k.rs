//! C10K stress: ten thousand concurrent client connections through the
//! full loopback gateway chain —
//!
//! ```text
//! clients ──clear──▶ encode gw ──obf──▶ decode gw ──clear──▶ echo server
//! ```
//!
//! — every echo byte-identical to the client's framed request, no relay
//! failures, and the event loop's wake-servicing p99 bounded. The whole
//! chain runs in this one process, so each client connection costs six
//! file descriptors end to end; the test raises its own `RLIMIT_NOFILE`
//! (via the same raw-syscall shim the event loop uses) and scales the
//! connection count down to whatever limit it actually got.
//!
//! Connection count is env-tunable: `PROTOOBF_C10K_CONNS=1000` runs the
//! CI-sized variant; the default is the full 10 000. The clients are
//! driven off one epoll instance of their own — a readiness *scan* over
//! 10k client sockets would make the test harness the bottleneck being
//! measured.

#![cfg(unix)]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use protoobf_core::service::CodecService;
use protoobf_core::{Codec, Obfuscator};
use protoobf_protocols::modbus::{self, Function};
use protoobf_transport::{evloop, sys, Echo, Gateway, GatewayMode, LoopConfig, Metrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARED_SEED: u64 = 0xC10C;
const DEFAULT_CONNS: usize = 10_000;
/// Six sockets per end-to-end connection: client, encode down+up, decode
/// down+up, echo.
const FDS_PER_CONN: usize = 6;
/// Wake-servicing p99 bound (µs). Deliberately loose — the point is
/// "bounded under 10k connections", not a latency benchmark on shared CI
/// hardware.
const P99_BOUND_MICROS: u64 = 2_000_000;

fn target_conns() -> usize {
    std::env::var("PROTOOBF_C10K_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CONNS)
}

/// One client: sends a single framed modbus request, expects the exact
/// bytes echoed back through the chain.
struct Client {
    stream: TcpStream,
    framed: Vec<u8>,
    sent: usize,
    echoed: Vec<u8>,
    done: bool,
}

impl Client {
    /// Pumps writes then reads until both would block; flips `done` once
    /// the full echo arrived.
    fn pump(&mut self) -> std::io::Result<()> {
        while self.sent < self.framed.len() {
            match self.stream.write(&self.framed[self.sent..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => self.sent += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let mut buf = [0u8; 4096];
        while self.echoed.len() < self.framed.len() {
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(std::io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.echoed.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.echoed.len() >= self.framed.len() {
            self.done = true;
        }
        Ok(())
    }
}

#[test]
fn c10k_chain_relays_byte_identical_with_bounded_wake_latency() {
    if !sys::supported() {
        eprintln!("skipping: no raw-syscall epoll shim on this target");
        return;
    }
    let mut conns = target_conns();
    let want = (conns * FDS_PER_CONN + 1024) as u64;
    match sys::raise_nofile_limit(want) {
        Ok(achieved) if achieved >= want => {}
        Ok(achieved) => {
            conns = ((achieved.saturating_sub(1024)) as usize / FDS_PER_CONN).max(64).min(conns);
            eprintln!("fd limit capped at {achieved}; scaling to {conns} connections");
        }
        Err(e) => {
            conns = 256.min(conns);
            eprintln!("cannot raise fd limit ({e}); scaling to {conns} connections");
        }
    }

    let graph = modbus::request_graph();
    let clear = Codec::identity(&graph);
    let obf = || Obfuscator::new(&graph).seed(SHARED_SEED).max_per_node(2).obfuscate().unwrap();

    let server_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server_addr = server_listener.local_addr().unwrap();
    let decode_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let decode_addr = decode_listener.local_addr().unwrap();
    let encode_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let encode_addr = encode_listener.local_addr().unwrap();

    let encode_gw = Gateway::new(&graph, obf(), GatewayMode::Encode, decode_addr).unwrap();
    let decode_gw = Gateway::new(&graph, obf(), GatewayMode::Decode, server_addr).unwrap();
    let server_svc = CodecService::new(Codec::identity(&graph));
    let server_metrics = Metrics::new();

    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig { workers: 2, accept_limit: None, ..LoopConfig::default() };

    std::thread::scope(|scope| {
        let loops = [
            scope.spawn(|| {
                evloop::serve(server_listener, &cfg, &shutdown, &server_metrics, |s, _| {
                    Ok(Echo::new(s, &server_svc, &server_metrics))
                })
            }),
            scope.spawn(|| decode_gw.serve(decode_listener, &cfg, &shutdown)),
            scope.spawn(|| encode_gw.serve(encode_listener, &cfg, &shutdown)),
        ];

        // Phase 1: open every connection before any traffic flows — the
        // chain really holds `conns` concurrent relays per gateway.
        let epoll = sys::Epoll::new().unwrap();
        let mut clients: Vec<Client> = Vec::with_capacity(conns);
        for i in 0..conns {
            let stream = TcpStream::connect(encode_addr)
                .unwrap_or_else(|e| panic!("connect {i}/{conns}: {e}"));
            let _ = stream.set_nodelay(true);
            stream.set_nonblocking(true).unwrap();
            let interest = sys::flags::IN | sys::flags::OUT | sys::flags::RDHUP | sys::flags::ET;
            epoll.add(stream.as_raw_fd(), interest, i as u64).unwrap();
            // Per-client distinct payload: function and field values are
            // seeded by the client index.
            let mut rng = StdRng::seed_from_u64(i as u64);
            let f = Function::ALL[i % Function::ALL.len()];
            let msg = modbus::build_request(&clear, f, &mut rng);
            let body = clear.serialize(&msg).unwrap();
            let mut framed = (body.len() as u32).to_be_bytes().to_vec();
            framed.extend_from_slice(&body);
            clients.push(Client { stream, framed, sent: 0, echoed: Vec::new(), done: false });
        }

        // Phase 2: fire all requests and drive by kernel readiness until
        // every echo is home. Connections stay open until the last one
        // finishes, so the in-flight phase is fully concurrent.
        let mut remaining = clients.len();
        for c in clients.iter_mut() {
            c.pump().unwrap();
            if c.done {
                remaining -= 1;
            }
        }
        let deadline = Instant::now() + Duration::from_secs(300);
        let mut events = vec![sys::EpollEvent::zeroed(); 1024];
        while remaining > 0 {
            assert!(
                Instant::now() < deadline,
                "timed out with {remaining}/{} echoes outstanding",
                clients.len()
            );
            let n = epoll.wait(&mut events, Some(Duration::from_millis(200))).unwrap();
            for ev in events.iter().take(n) {
                let idx = ev.token() as usize;
                let c = &mut clients[idx];
                if c.done {
                    continue;
                }
                c.pump().unwrap_or_else(|e| panic!("client {idx}: {e}"));
                if c.done {
                    remaining -= 1;
                }
            }
        }

        // Byte-identical through encode → obfuscated hop → decode → echo
        // and all the way back.
        for (i, c) in clients.iter().enumerate() {
            assert_eq!(
                c.echoed, c.framed,
                "client {i}: echoed bytes diverged from the framed request"
            );
        }
        drop(clients);

        shutdown.store(true, Ordering::Relaxed);
        for l in loops {
            l.join().unwrap().unwrap();
        }
    });

    let conns = conns as u64;
    for (name, snap) in
        [("encode", encode_gw.metrics().snapshot()), ("decode", decode_gw.metrics().snapshot())]
    {
        eprintln!("{name}: {snap}");
        assert_eq!(snap.accepted, conns, "{name} gateway must accept every connection");
        assert_eq!(snap.failed, 0, "{name} gateway relays must not fail: {snap}");
        assert_eq!(snap.accept_errors, 0, "{name} gateway accepts must not fail: {snap}");
        // Every connection carries one request and one echo.
        assert_eq!(snap.messages_in, conns * 2, "{name} gateway message count");
        let wakes = snap.wake_latency;
        assert!(wakes.count() > 0, "{name} gateway recorded no wakes");
        assert!(
            wakes.p99() <= P99_BOUND_MICROS,
            "{name} gateway wake p99 {} µs exceeds {} µs",
            wakes.p99(),
            P99_BOUND_MICROS
        );
    }
}

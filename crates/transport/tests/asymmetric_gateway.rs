//! Profile-driven gateway chains over real loopback sockets, asymmetric
//! and symmetric:
//!
//! ```text
//! client ──tx grammar──▶ encode gw ──obf──▶ decode gw ──tx grammar──▶ server
//!        ◀──rx grammar──            ◀──obf──           ◀──rx grammar──
//! ```
//!
//! Both gateways are configured **only** by copies of the same profile
//! text. The tests assert the relay is byte-identical per direction for
//! the DNS (query/response, asymmetric) and Modbus (symmetric) bundled
//! protocols, that fingerprints agree across the pair, and that a key
//! mismatch is caught by fingerprint comparison before any traffic —
//! and really does break the wire if ignored.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

use protoobf_core::framing::{FrameBuffer, FrameReader, FrameWriter};
use protoobf_core::profile::{Endpoint, Profile, SpecSource};
use protoobf_core::sample::random_message;
use protoobf_core::FormatGraph;
use protoobf_transport::{duplex, Conn, Gateway, GatewayMode, LoopConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The builtin table the facade's standard resolver provides, recreated
/// here from the protocols crate (transport cannot depend on the facade).
fn resolver(src: &SpecSource) -> Result<FormatGraph, String> {
    match src {
        SpecSource::Builtin(name) => match name.as_str() {
            "dns-query" => Ok(protoobf_protocols::dns::query_graph()),
            "dns-response" => Ok(protoobf_protocols::dns::response_graph()),
            "modbus-request" => Ok(protoobf_protocols::modbus::request_graph()),
            "modbus-response" => Ok(protoobf_protocols::modbus::response_graph()),
            other => Err(format!("not in the test table: {other}")),
        },
        other => Err(format!("unexpected source {other}")),
    }
}

const ASYM_PROFILE: &str = "profile protoobf/1\n\
                            tx builtin:dns-query\n\
                            rx builtin:dns-response\n\
                            key \"loopback asymmetric secret\"\n\
                            level 2\n";

const SYM_PROFILE: &str = "profile protoobf/1\n\
                           spec builtin:modbus-request\n\
                           key \"loopback symmetric secret\"\n\
                           level 2\n";

const MSGS: usize = 24;

/// Runs encode gw + decode gw (each from its own copy of `profile_text`)
/// and a raw recording server, drives one client connection with `MSGS`
/// request/response rounds, and asserts both directions relayed
/// byte-identically.
fn run_chain(profile_text: &str) {
    let encode_ep = Profile::parse(profile_text).unwrap().build_with(&resolver).unwrap();
    let decode_ep = Profile::parse(profile_text).unwrap().build_with(&resolver).unwrap();
    assert_eq!(
        encode_ep.fingerprint(),
        decode_ep.fingerprint(),
        "copies of one profile must derive identical stacks"
    );

    let server_l = TcpListener::bind("127.0.0.1:0").unwrap();
    let decode_l = TcpListener::bind("127.0.0.1:0").unwrap();
    let encode_l = TcpListener::bind("127.0.0.1:0").unwrap();
    let client_addr = encode_l.local_addr().unwrap();

    let encode_gw =
        Gateway::from_endpoint(&encode_ep, GatewayMode::Encode, decode_l.local_addr().unwrap())
            .unwrap();
    let decode_gw =
        Gateway::from_endpoint(&decode_ep, GatewayMode::Decode, server_l.local_addr().unwrap())
            .unwrap();
    assert_eq!(encode_gw.fingerprint(), decode_gw.fingerprint());

    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig { workers: 2, accept_limit: None, ..LoopConfig::default() };

    std::thread::scope(|scope| {
        let loops = [
            scope.spawn(|| decode_gw.serve(decode_l, &cfg, &shutdown)),
            scope.spawn(|| encode_gw.serve(encode_l, &cfg, &shutdown)),
        ];

        // Server: record every request frame, answer with a response
        // frame, record what was sent.
        let server = scope.spawn(|| {
            let request_codec = decode_ep.clear_tx_service().codec();
            let response_codec = decode_ep.clear_rx_service().codec();
            let (stream, _) = server_l.accept().unwrap();
            let mut reader = FrameReader::new(request_codec, &stream);
            let mut writer = FrameWriter::new(response_codec, &stream);
            let mut rng = StdRng::seed_from_u64(11);
            let mut seen = Vec::new();
            let mut sent = Vec::new();
            for _ in 0..MSGS {
                let request = reader.recv_raw().unwrap().expect("request frame");
                request_codec.parse(&request).expect("relayed request parses");
                seen.push(request);
                let wire =
                    response_codec.serialize(&random_message(response_codec, &mut rng)).unwrap();
                writer.send_raw(&wire).unwrap();
                sent.push(wire);
            }
            (seen, sent)
        });

        // Client: send request frames, record them and the responses.
        let request_codec = encode_ep.clear_tx_service().codec();
        let response_codec = encode_ep.clear_rx_service().codec();
        let stream = TcpStream::connect(client_addr).unwrap();
        let mut writer = FrameWriter::new(request_codec, &stream);
        let mut reader = FrameReader::new(response_codec, &stream);
        let mut rng = StdRng::seed_from_u64(5);
        let mut client_sent = Vec::new();
        let mut client_got = Vec::new();
        for _ in 0..MSGS {
            let wire = request_codec.serialize(&random_message(request_codec, &mut rng)).unwrap();
            writer.send_raw(&wire).unwrap();
            client_sent.push(wire);
            let response = reader.recv_raw().unwrap().expect("response frame");
            response_codec.parse(&response).expect("relayed response parses");
            client_got.push(response);
        }
        drop((reader, writer));
        drop(stream);

        let (server_seen, server_sent) = server.join().unwrap();
        assert_eq!(client_sent, server_seen, "request direction must relay byte-identical");
        assert_eq!(server_sent, client_got, "response direction must relay byte-identical");

        shutdown.store(true, Ordering::Relaxed);
        for l in loops {
            l.join().unwrap().unwrap();
        }
    });

    assert_eq!(encode_gw.metrics().snapshot().failed, 0);
    assert_eq!(decode_gw.metrics().snapshot().failed, 0);
}

#[test]
fn asymmetric_profile_chain_relays_byte_identical() {
    run_chain(ASYM_PROFILE);
}

#[test]
fn symmetric_profile_chain_relays_byte_identical() {
    run_chain(SYM_PROFILE);
}

#[test]
fn key_mismatch_is_detected_by_fingerprint_before_traffic() {
    let good = Profile::parse(ASYM_PROFILE).unwrap();
    let bad = good.clone().key("tampered secret");
    let good_ep = good.build_with(&resolver).unwrap();
    let bad_ep = bad.build_with(&resolver).unwrap();

    // The pre-traffic check: fingerprints disagree.
    assert_ne!(good_ep.fingerprint(), bad_ep.fingerprint());

    // And the check is honest — ignoring it, the mismatched stacks do
    // not interoperate: a good-side obfuscated wire fails (or garbles)
    // on the bad side's parser.
    let tx = good_ep.tx_service();
    let reference = {
        let mut wire = Vec::new();
        let msg = random_message(tx.codec(), &mut StdRng::seed_from_u64(3));
        tx.serializer().serialize_into_seeded(&msg, &mut wire, 9).unwrap();
        wire
    };
    let survived = bad_ep.tx_service().parser().parse_in_place(&reference).is_ok();
    assert!(!survived, "mismatched keys must not decode each other's wires");
}

/// The sans-io path: a [`Conn::initiator`]/[`Conn::responder`] pair built
/// from two copies of one asymmetric profile exchanges native obfuscated
/// traffic (no gateways, no clear legs) through the in-memory duplex,
/// under 1-byte trickle chunking.
#[test]
fn native_endpoint_conns_speak_asymmetric_profiles() {
    let a: Endpoint = Profile::parse(ASYM_PROFILE).unwrap().build_with(&resolver).unwrap();
    let b: Endpoint = Profile::parse(ASYM_PROFILE).unwrap().build_with(&resolver).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());

    let mut initiator = Conn::initiator(&a);
    let mut responder = Conn::responder(&b);
    let mut rng = StdRng::seed_from_u64(21);

    for round in 0..8usize {
        let request = random_message(a.tx_service().codec(), &mut rng);
        initiator.send(&request).unwrap();
        duplex::shuttle(&mut initiator, &mut responder, |i| if round % 2 == 0 { 1 } else { i + 7 })
            .unwrap();
        assert!(responder.poll_inbound().unwrap().is_some(), "round {round}: request arrives");

        let reply = random_message(b.rx_service().codec(), &mut rng);
        responder.send(&reply).unwrap();
        duplex::shuttle(&mut initiator, &mut responder, |_| 3).unwrap();
        assert!(initiator.poll_inbound().unwrap().is_some(), "round {round}: reply arrives");
    }
    assert_eq!(initiator.messages_out(), 8);
    assert_eq!(responder.messages_out(), 8);
}

/// The obfuscated leg between a profile pair's gateways must not be the
/// clear protocol: sniff the encode→decode segment and check the frames
/// do not parse as the plain tx grammar.
#[test]
fn obfuscated_leg_is_not_the_clear_grammar() {
    let ep = Profile::parse(ASYM_PROFILE).unwrap().build_with(&resolver).unwrap();
    // A sniffing "decode gateway": accept the obfuscated stream raw.
    let sniff_l = TcpListener::bind("127.0.0.1:0").unwrap();
    let encode_l = TcpListener::bind("127.0.0.1:0").unwrap();
    let client_addr = encode_l.local_addr().unwrap();
    let encode_gw =
        Gateway::from_endpoint(&ep, GatewayMode::Encode, sniff_l.local_addr().unwrap()).unwrap();

    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig { workers: 1, accept_limit: Some(1), ..LoopConfig::default() };

    std::thread::scope(|scope| {
        let gw_loop = scope.spawn(|| encode_gw.serve(encode_l, &cfg, &shutdown));
        let sniffer = scope.spawn(|| {
            let (mut stream, _) = sniff_l.accept().unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                match stream.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) => panic!("sniffer read: {e}"),
                }
            }
            buf
        });

        let clear = ep.clear_tx_service().codec();
        let mut stream = TcpStream::connect(client_addr).unwrap();
        let mut writer = FrameWriter::new(clear, &stream);
        let mut rng = StdRng::seed_from_u64(2);
        let mut clear_wires = Vec::new();
        for _ in 0..4 {
            let wire = clear.serialize(&random_message(clear, &mut rng)).unwrap();
            writer.send_raw(&wire).unwrap();
            clear_wires.push(wire);
        }
        drop(writer);
        stream.flush().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();

        let sniffed = sniffer.join().unwrap();
        shutdown.store(true, Ordering::Relaxed);
        gw_loop.join().unwrap().unwrap();

        // Re-frame the sniffed bytes and check each body differs from
        // the corresponding clear wire (the grammars diverged).
        let mut fb = FrameBuffer::new();
        fb.feed(&sniffed);
        let mut bodies = Vec::new();
        while let Some(frame) = fb.peek().unwrap() {
            bodies.push(frame.to_vec());
            fb.consume();
        }
        assert_eq!(bodies.len(), 4, "four obfuscated frames expected");
        for (obf, clear_wire) in bodies.iter().zip(&clear_wires) {
            assert_ne!(obf, clear_wire, "obfuscated leg must not carry the clear wire");
        }
    });
}

//! Differential test of the sans-io transport against the direct codec
//! path: every valid corpus message round-tripped through a pair of
//! [`Conn`]s — under hostile chunking patterns — must come back
//! byte-identical to a direct `CodecService` serialize/parse; hostile,
//! truncated and oversized frames must fail the connection with a typed
//! error instead of panicking.

use protoobf_core::service::CodecService;
use protoobf_core::{Codec, FormatGraph, Message, Obfuscator};
use protoobf_transport::duplex::shuttle;
use protoobf_transport::{Conn, ConnState, TransportError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Fixture {
    clear: CodecService,
    obf: CodecService,
}

impl Fixture {
    fn new(graph: &FormatGraph, seed: u64) -> Fixture {
        let obf = Obfuscator::new(graph).seed(seed).max_per_node(2).obfuscate().unwrap();
        Fixture { clear: CodecService::new(Codec::identity(graph)), obf: CodecService::new(obf) }
    }
}

/// Corpus messages for every protocol, built against the clear codec.
fn corpus<'c>(clear: &'c CodecService, proto: &str, rng: &mut StdRng) -> Vec<Message<'c>> {
    let codec = clear.codec();
    match proto {
        "dns-query" => (0..8).map(|_| protoobf_protocols::dns::build_query(codec, rng)).collect(),
        "http-request" => {
            (0..8).map(|_| protoobf_protocols::http::build_request(codec, rng)).collect()
        }
        "modbus-request" => protoobf_protocols::modbus::Function::ALL
            .into_iter()
            .map(|f| protoobf_protocols::modbus::build_request(codec, f, rng))
            .collect(),
        other => panic!("unknown corpus {other}"),
    }
}

fn graph_for(proto: &str) -> FormatGraph {
    match proto {
        "dns-query" => protoobf_protocols::dns::query_graph(),
        "http-request" => protoobf_protocols::http::request_graph(),
        "modbus-request" => protoobf_protocols::modbus::request_graph(),
        other => panic!("unknown corpus {other}"),
    }
}

/// The deterministic reference wire: identity codecs draw no random
/// material, so clear serialization is reproducible byte-for-byte.
fn reference_wire(clear: &CodecService, msg: &Message<'_>) -> Vec<u8> {
    clear.codec().serialize_seeded(msg, 0).unwrap()
}

/// Round-trips `msgs` through an obfuscated Conn pair (the two gateway
/// legs of the paper's deployment) with the given chunking pattern, and
/// checks clear-side byte identity for every message.
fn roundtrip_pair(fx: &Fixture, msgs: &[Message<'_>], mut chunk: impl FnMut(usize) -> usize) {
    // a = encode-gateway upstream leg, b = decode-gateway downstream leg.
    let mut a = Conn::new(&fx.obf, &fx.obf);
    let mut b = Conn::new(&fx.obf, &fx.obf);
    let mut to_obf = fx.obf.codec().message();
    let mut to_clear = fx.clear.codec().message();

    // Pipelined: queue every message before any byte moves.
    for msg in msgs {
        msg.transcode_into(&mut to_obf).unwrap();
        a.send(&to_obf).unwrap();
    }
    shuttle(&mut a, &mut b, &mut chunk).unwrap();

    // Decode on b, transcode back to clear, compare with the direct path.
    let mut received = 0usize;
    while let Some(got) = b.poll_inbound().unwrap() {
        got.transcode_into(&mut to_clear).unwrap();
        assert_eq!(
            reference_wire(&fx.clear, &to_clear),
            reference_wire(&fx.clear, &msgs[received]),
            "message {received}: transport round-trip diverged from the direct codec path"
        );
        received += 1;
    }
    assert_eq!(received, msgs.len(), "every pipelined message must arrive");

    // Reverse direction: the same pipeline must hold b → a.
    for msg in msgs {
        msg.transcode_into(&mut to_obf).unwrap();
        b.send(&to_obf).unwrap();
    }
    shuttle(&mut a, &mut b, &mut chunk).unwrap();
    let mut back = 0usize;
    while let Some(got) = a.poll_inbound().unwrap() {
        got.transcode_into(&mut to_clear).unwrap();
        assert_eq!(
            reference_wire(&fx.clear, &to_clear),
            reference_wire(&fx.clear, &msgs[back]),
            "reverse message {back} diverged"
        );
        back += 1;
    }
    assert_eq!(back, msgs.len(), "every reverse message must arrive");
}

#[test]
fn conn_pairs_match_direct_codec_for_all_protocols() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for proto in ["dns-query", "http-request", "modbus-request"] {
        let graph = graph_for(proto);
        let fx = Fixture::new(&graph, 0x5EED);
        let msgs = corpus(&fx.clear, proto, &mut rng);
        // Bulk chunks, random small chunks, and a 1-byte slow-loris
        // trickle: framing must be split-agnostic.
        roundtrip_pair(&fx, &msgs, |_| 64 * 1024);
        let mut chunk_rng = StdRng::seed_from_u64(7);
        roundtrip_pair(&fx, &msgs, move |_| chunk_rng.gen_range(1..=7));
        roundtrip_pair(&fx, &msgs, |_| 1);
    }
}

#[test]
fn hostile_frame_fails_connection_with_typed_error() {
    let graph = graph_for("modbus-request");
    let fx = Fixture::new(&graph, 1);
    let mut conn = Conn::new(&fx.obf, &fx.obf);
    // A well-formed prefix carrying undecodable garbage.
    let mut frame = 64u32.to_be_bytes().to_vec();
    frame.extend_from_slice(&[0xA5; 64]);
    conn.feed_inbound(&frame).unwrap();
    match conn.poll_inbound() {
        Err(TransportError::Frame(_)) => {}
        other => panic!("hostile frame must fail with a frame error, got {other:?}"),
    }
    assert_eq!(conn.state(), ConnState::Failed);
    // The failed connection is inert, not panicky.
    assert!(matches!(conn.poll_inbound(), Err(TransportError::Closed)));
    assert!(matches!(conn.feed_inbound(b"more"), Err(TransportError::Closed)));
    let msg = fx.obf.codec().message();
    assert!(matches!(conn.send(&msg), Err(TransportError::Closed)));
}

#[test]
fn oversized_prefix_fails_connection() {
    let graph = graph_for("modbus-request");
    let fx = Fixture::new(&graph, 1);
    let mut conn = Conn::new(&fx.obf, &fx.obf);
    let limit = fx.obf.frame_limit();
    conn.feed_inbound(&((limit as u32) + 1).to_be_bytes()).unwrap();
    match conn.poll_inbound() {
        Err(TransportError::Frame(protoobf_core::framing::FrameError::TooLarge {
            got, ..
        })) => assert_eq!(got, limit + 1),
        other => panic!("oversized prefix must be rejected, got {other:?}"),
    }
    assert_eq!(conn.state(), ConnState::Failed);
}

#[test]
fn truncated_stream_fails_connection() {
    let mut rng = StdRng::seed_from_u64(3);
    let graph = graph_for("dns-query");
    let fx = Fixture::new(&graph, 2);
    let msg = protoobf_protocols::dns::build_query(fx.clear.codec(), &mut rng);
    let mut obf_msg = fx.obf.codec().message();
    msg.transcode_into(&mut obf_msg).unwrap();

    let mut sender = Conn::new(&fx.obf, &fx.obf);
    sender.send(&obf_msg).unwrap();
    let wire = sender.outbound().to_vec();

    for cut in 1..wire.len() {
        let mut conn = Conn::new(&fx.obf, &fx.obf);
        conn.feed_inbound(&wire[..cut]).unwrap();
        conn.feed_eof();
        match conn.poll_inbound() {
            Err(TransportError::Frame(_)) => {}
            Ok(None) => panic!("cut {cut}: truncation went unnoticed"),
            other => panic!("cut {cut}: unexpected {other:?}"),
        }
        assert_eq!(conn.state(), ConnState::Failed, "cut {cut}");
    }
}

#[test]
fn close_drains_then_terminates() {
    let graph = graph_for("modbus-request");
    let fx = Fixture::new(&graph, 4);
    let mut rng = StdRng::seed_from_u64(9);
    let msg = protoobf_protocols::modbus::build_request(
        fx.clear.codec(),
        protoobf_protocols::modbus::Function::ReadCoils,
        &mut rng,
    );
    let mut obf_msg = fx.obf.codec().message();
    msg.transcode_into(&mut obf_msg).unwrap();

    let mut conn = Conn::new(&fx.obf, &fx.obf);
    conn.send(&obf_msg).unwrap();
    conn.close();
    assert_eq!(conn.state(), ConnState::Open, "close waits for the transport to drain");
    assert!(matches!(conn.send(&obf_msg), Err(TransportError::Closed)));
    let mut sink = [0u8; 16];
    while conn.poll_outbound(&mut sink) > 0 {}
    assert_eq!(conn.state(), ConnState::Closed);
}

#[test]
fn mem_duplex_streams_carry_framed_traffic() {
    use protoobf_core::framing::{FrameError, FrameReader, FrameWriter};
    use std::io::ErrorKind;

    let graph = graph_for("modbus-request");
    let codec = Codec::identity(&graph);
    let mut rng = StdRng::seed_from_u64(21);
    let (client, server) = protoobf_transport::duplex::mem_duplex(1); // 1-byte reads
    let mut writer = FrameWriter::new(&codec, client);
    let mut reader = FrameReader::new(&codec, server);
    let mut sent = Vec::new();
    for f in protoobf_protocols::modbus::Function::ALL {
        let msg = protoobf_protocols::modbus::build_request(&codec, f, &mut rng);
        sent.push(codec.serialize_seeded(&msg, 0).unwrap());
        writer.send(&msg).unwrap();
    }
    writer.into_inner().close();
    // Non-blocking 1-byte reads: WouldBlock interleaves with progress and
    // the resumable reader must reassemble every frame.
    let mut got = Vec::new();
    loop {
        match reader.recv() {
            Ok(Some(m)) => got.push(codec.serialize_seeded(&m, 0).unwrap()),
            Ok(None) => break,
            Err(FrameError::Io(e)) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) => panic!("unexpected {e:?}"),
        }
    }
    assert_eq!(got, sent);
}

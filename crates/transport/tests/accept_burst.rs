//! Accept-burst fairness: a flood of new connections must not starve
//! established sessions ([`LoopConfig::accept_burst`] caps accepts per
//! wake), and the cap must not lose connections — everyone still gets
//! accepted, just a bounded burst at a time.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use protoobf_core::service::CodecService;
use protoobf_core::Codec;
use protoobf_protocols::modbus::{self, Function};
use protoobf_transport::{evloop, Echo, LoopConfig, Metrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One framed request and its expected (identical) framed echo.
fn framed_request(clear: &Codec, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = Function::ALL[seed as usize % Function::ALL.len()];
    let body = clear.serialize(&modbus::build_request(clear, f, &mut rng)).unwrap();
    let mut framed = (body.len() as u32).to_be_bytes().to_vec();
    framed.extend_from_slice(&body);
    framed
}

fn roundtrip(stream: &mut TcpStream, framed: &[u8]) {
    stream.write_all(framed).unwrap();
    let mut echoed = vec![0u8; framed.len()];
    stream.read_exact(&mut echoed).unwrap();
    assert_eq!(echoed, framed, "echo diverged");
}

/// A tiny accept burst (2 per wake) against a 48-connection flood, on a
/// single worker: the established client's round trips keep completing
/// *during* the flood (no starvation), and the flood is still fully
/// accepted afterwards (the cap defers accepts, never drops them).
#[test]
fn accept_flood_neither_starves_established_sessions_nor_loses_connections() {
    const FLOOD: usize = 48;

    let graph = modbus::request_graph();
    let clear = Codec::identity(&graph);
    let svc = CodecService::new(Codec::identity(&graph));
    let metrics = Metrics::new();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig { workers: 1, accept_burst: 2, ..LoopConfig::default() };

    std::thread::scope(|scope| {
        let served = scope.spawn(|| {
            evloop::serve(listener, &cfg, &shutdown, &metrics, |s, _| {
                Ok(Echo::new(s, &svc, &metrics))
            })
        });

        // Establish a session before the flood and prove it works.
        let mut established = TcpStream::connect(addr).unwrap();
        established.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let framed = framed_request(&clear, 7);
        roundtrip(&mut established, &framed);

        // Flood: open all connections at once, each eventually does its
        // own round trip (proving it got accepted and served).
        let flood: Vec<TcpStream> = (0..FLOOD).map(|_| TcpStream::connect(addr).unwrap()).collect();

        // While the worker chews through the flood two accepts per wake,
        // the established session must keep making progress.
        let fair_window = Instant::now();
        for round in 0..16 {
            roundtrip(&mut established, &framed);
            assert!(
                fair_window.elapsed() < Duration::from_secs(20),
                "established session starved during accept flood (stuck at round {round})"
            );
        }

        for (i, mut s) in flood.into_iter().enumerate() {
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            let framed = framed_request(&clear, i as u64);
            roundtrip(&mut s, &framed);
        }
        drop(established);

        shutdown.store(true, Ordering::Relaxed);
        served.join().unwrap().unwrap();
    });

    let snap = metrics.snapshot();
    assert_eq!(
        snap.accepted as usize,
        FLOOD + 1,
        "the accept cap must defer accepts, never drop them: {snap}"
    );
    assert_eq!(snap.failed, 0, "{snap}");
    assert!(snap.wake_latency.count() > 0, "wake servicing must be recorded: {snap}");
}

/// `accept_burst` is clamped, not trusted: a zero burst still accepts
/// (one per wake) instead of wedging the listener forever.
#[test]
fn zero_accept_burst_still_accepts() {
    let graph = modbus::request_graph();
    let clear = Codec::identity(&graph);
    let svc = CodecService::new(Codec::identity(&graph));
    let metrics = Metrics::new();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig { workers: 1, accept_limit: Some(1), accept_burst: 0 };

    std::thread::scope(|scope| {
        let served = scope.spawn(|| {
            evloop::serve(listener, &cfg, &shutdown, &metrics, |s, _| {
                Ok(Echo::new(s, &svc, &metrics))
            })
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let framed = framed_request(&clear, 1);
        roundtrip(&mut stream, &framed);
        drop(stream); // accept_limit reached + session drained → serve returns
        served.join().unwrap().unwrap();
    });
    assert_eq!(metrics.snapshot().accepted, 1);
}

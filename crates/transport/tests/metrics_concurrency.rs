//! Concurrency contract of [`protoobf_transport::Metrics`]: eight writer
//! threads hammer the counters and the latency histogram while a reader
//! snapshots continuously — snapshots must be internally consistent
//! (counts conserved, monotone over time, percentiles inside the
//! recorded value range) without ever blocking a writer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use protoobf_transport::metrics::{LatencyHistogram, HISTOGRAM_BUCKETS};
use protoobf_transport::Metrics;

const WRITERS: u64 = 8;
const RECORDS_PER_WRITER: u64 = 20_000;

/// All records land, none duplicated: the final histogram count equals
/// the number of `record` calls and each bucket holds exactly the values
/// steered at it.
#[test]
fn histogram_conserves_records_across_eight_threads() {
    let metrics = Arc::new(Metrics::new());
    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let metrics = Arc::clone(&metrics);
            scope.spawn(move || {
                for i in 0..RECORDS_PER_WRITER {
                    // Spread values across buckets deterministically:
                    // value = 1 << (record index % 8), plus thread skew.
                    metrics.wake_latency.record(1u64 << ((i + t) % 8));
                    metrics.bytes_in.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let snap = metrics.snapshot();
    assert_eq!(snap.wake_latency.count(), WRITERS * RECORDS_PER_WRITER);
    assert_eq!(snap.bytes_in, WRITERS * RECORDS_PER_WRITER);
    // Every value was a power of two in [1, 128] → buckets 1..=8 only,
    // and the per-bucket totals are exact (each (t + i) % 8 residue is
    // hit the same number of times across the full grid).
    let expected_per_bucket = WRITERS * RECORDS_PER_WRITER / 8;
    for (b, &n) in snap.wake_latency.buckets.iter().enumerate() {
        if (1..=8).contains(&b) {
            assert_eq!(n, expected_per_bucket, "bucket {b}");
        } else {
            assert_eq!(n, 0, "bucket {b} must be untouched");
        }
    }
    // Percentiles come from the recorded range.
    assert!(snap.wake_latency.p50() >= 1);
    assert!(snap.wake_latency.p99() <= LatencyHistogram::bucket_ceiling(8));
}

/// A reader snapshotting mid-flight sees consistent, monotone data:
/// counts only grow, every per-bucket count is below the eventual total,
/// and percentile queries never panic or step outside the value range.
#[test]
fn snapshots_are_monotone_and_bounded_while_writers_run() {
    let metrics = Arc::new(Metrics::new());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let metrics = Arc::clone(&metrics);
            scope.spawn(move || {
                for i in 0..RECORDS_PER_WRITER {
                    metrics.wake_latency.record(i % 1_000 + t);
                    metrics.messages_in.fetch_add(1, Ordering::Relaxed);
                    metrics.messages_out.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let reader = {
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut last_count = 0u64;
                let mut last_msgs = 0u64;
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = metrics.snapshot();
                    let count = snap.wake_latency.count();
                    assert!(count >= last_count, "histogram count went backwards");
                    assert!(snap.messages_in >= last_msgs, "counter went backwards");
                    assert!(count <= WRITERS * RECORDS_PER_WRITER);
                    assert_eq!(
                        snap.wake_latency.buckets.len(),
                        HISTOGRAM_BUCKETS,
                        "snapshot carries every bucket"
                    );
                    if count > 0 {
                        let (p50, p99) = (snap.wake_latency.p50(), snap.wake_latency.p99());
                        assert!(p50 <= p99, "p50 {p50} above p99 {p99}");
                        // Values were < 1000 + 8 → ceiling of bucket 10.
                        assert!(p99 <= LatencyHistogram::bucket_ceiling(10));
                    }
                    last_count = count;
                    last_msgs = snap.messages_in;
                    observations += 1;
                }
                observations
            })
        };
        // Writers finish when the scope's non-reader threads join; tell
        // the reader afterwards. (Scope join order: we must signal stop
        // before the scope can join the reader.)
        scope.spawn({
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            move || {
                while metrics.snapshot().wake_latency.count() < WRITERS * RECORDS_PER_WRITER {
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Relaxed);
            }
        });
        let observations = reader.join().unwrap();
        assert!(observations > 0, "reader never observed a snapshot");
    });
    let final_snap = metrics.snapshot();
    assert_eq!(final_snap.wake_latency.count(), WRITERS * RECORDS_PER_WRITER);
    assert_eq!(final_snap.messages_in, WRITERS * RECORDS_PER_WRITER);
    assert_eq!(final_snap.messages_out, WRITERS * RECORDS_PER_WRITER);
}

//! Coverage for the portable **readiness-scan fallback**: every test in
//! this file (its own process) sets `PROTOOBF_EVLOOP=scan` before
//! starting an event loop, forcing the worker the epoll-less targets
//! get. The suite proves the fallback still serves correctly — round
//! trips, accept caps, wake-latency recording, backpressure gating — so
//! the compile-time backend split cannot silently rot.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use protoobf_core::service::CodecService;
use protoobf_core::Codec;
use protoobf_protocols::modbus::{self, Function};
use protoobf_transport::{evloop, Echo, LoopConfig, Metrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forces the scan worker for this whole test process. All tests set the
/// same value, so the (process-global) write is race-free in effect.
fn force_scan() {
    // SAFETY: all writers in this process store the same value, and the
    // event loop only reads it.
    unsafe { std::env::set_var("PROTOOBF_EVLOOP", "scan") };
}

fn framed_request(clear: &Codec, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = Function::ALL[seed as usize % Function::ALL.len()];
    let body = clear.serialize(&modbus::build_request(clear, f, &mut rng)).unwrap();
    let mut framed = (body.len() as u32).to_be_bytes().to_vec();
    framed.extend_from_slice(&body);
    framed
}

/// 32 concurrent echo round trips on the scan worker, byte-identical,
/// with wake latency recorded and idle naps observed (the scan path's
/// signature the epoll path never produces while parked).
#[test]
fn scan_fallback_roundtrips_and_records_wake_latency() {
    force_scan();
    const CLIENTS: usize = 32;

    let graph = modbus::request_graph();
    let clear = Codec::identity(&graph);
    let svc = CodecService::new(Codec::identity(&graph));
    let metrics = Metrics::new();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig { workers: 2, ..LoopConfig::default() };

    std::thread::scope(|scope| {
        let served = scope.spawn(|| {
            evloop::serve(listener, &cfg, &shutdown, &metrics, |s, _| {
                Ok(Echo::new(s, &svc, &metrics))
            })
        });
        std::thread::scope(|clients| {
            for t in 0..CLIENTS {
                let clear = &clear;
                clients.spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                    let framed = framed_request(clear, t as u64);
                    for _ in 0..4 {
                        stream.write_all(&framed).unwrap();
                        let mut echoed = vec![0u8; framed.len()];
                        stream.read_exact(&mut echoed).unwrap();
                        assert_eq!(echoed, framed, "client {t}: echo diverged on scan path");
                    }
                });
            }
        });
        // Linger briefly so idle workers demonstrably back off.
        std::thread::sleep(Duration::from_millis(50));
        shutdown.store(true, Ordering::Relaxed);
        served.join().unwrap().unwrap();
    });

    let snap = metrics.snapshot();
    assert_eq!(snap.accepted as usize, CLIENTS);
    assert_eq!(snap.failed, 0, "{snap}");
    assert!(snap.wake_latency.count() > 0, "scan wakes must be recorded: {snap}");
    assert!(snap.idle_naps > 0, "idle scan workers must nap: {snap}");
}

/// Backpressure on the scan worker: a tiny outbound cap against a client
/// that floods requests while not reading replies. The echo must gate
/// its reads (backpressure events recorded), survive (no failure, no
/// unbounded queue), and deliver every reply once the client drains.
#[test]
fn scan_fallback_gates_reads_under_backpressure() {
    force_scan();
    const MSGS: usize = 64;

    let graph = modbus::request_graph();
    let clear = Codec::identity(&graph);
    let svc = CodecService::new(Codec::identity(&graph));
    let metrics = Metrics::new();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig { workers: 1, ..LoopConfig::default() };

    std::thread::scope(|scope| {
        let served = scope.spawn(|| {
            evloop::serve(listener, &cfg, &shutdown, &metrics, |s, _| {
                // One frame's worth of cap: pressure engages immediately.
                Ok(Echo::new(s, &svc, &metrics).outbound_cap(1))
            })
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let framed = framed_request(&clear, 3);
        // Flood all requests without reading a single reply.
        for _ in 0..MSGS {
            stream.write_all(&framed).unwrap();
        }
        // Now drain: every echo must still arrive, in order, intact.
        for i in 0..MSGS {
            let mut echoed = vec![0u8; framed.len()];
            stream.read_exact(&mut echoed).unwrap_or_else(|e| panic!("echo {i}: {e}"));
            assert_eq!(echoed, framed, "echo {i} diverged under backpressure");
        }
        drop(stream);

        shutdown.store(true, Ordering::Relaxed);
        served.join().unwrap().unwrap();
    });

    let snap = metrics.snapshot();
    assert_eq!(snap.failed, 0, "backpressure must pause, not kill: {snap}");
    assert_eq!(snap.messages_in as usize, MSGS, "every request served: {snap}");
    assert!(
        snap.backpressure_events > 0,
        "a 1-byte cap against a flood must record pressure: {snap}"
    );
}

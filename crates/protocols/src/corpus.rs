//! Labeled message corpora for the experiments: mixed populations of
//! Modbus/HTTP messages with ground-truth type labels, serialized through
//! a given codec.

use protoobf_core::Codec;
use rand::Rng;

use crate::{dns, http, modbus};

/// One serialized message with its ground-truth type label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Ground-truth message type (e.g. `req:03` for a Modbus FC3 request).
    pub label: String,
    /// Serialized (possibly obfuscated) bytes.
    pub wire: Vec<u8>,
}

/// Generates `per_type` Modbus request samples for every function code
/// (the paper's experiment population), serialized through `codec`.
///
/// # Panics
///
/// Panics if `codec` was not built from [`modbus::request_graph`].
pub fn modbus_requests<R: Rng + ?Sized>(
    codec: &Codec,
    per_type: usize,
    rng: &mut R,
) -> Vec<Sample> {
    let mut out = Vec::with_capacity(per_type * modbus::Function::ALL.len());
    for f in modbus::Function::ALL {
        for _ in 0..per_type {
            let m = modbus::build_request(codec, f, rng);
            let wire = codec.serialize_seeded(&m, rng.gen()).expect("generated request serializes");
            out.push(Sample { label: f.label(), wire });
        }
    }
    out
}

/// Generates `per_type` request+response pairs for the given function
/// codes — the trace shape of the paper's resilience assessment (§VII-D:
/// "4 different messages and their corresponding answers").
pub fn modbus_trace<R: Rng + ?Sized>(
    req_codec: &Codec,
    resp_codec: &Codec,
    functions: &[modbus::Function],
    per_type: usize,
    rng: &mut R,
) -> Vec<Sample> {
    let mut out = Vec::new();
    for &f in functions {
        for _ in 0..per_type {
            let req = modbus::build_request(req_codec, f, rng);
            let wire = req_codec.serialize_seeded(&req, rng.gen()).expect("request serializes");
            out.push(Sample { label: f.label(), wire });
            let resp = modbus::build_response(resp_codec, f, false, rng);
            let wire = resp_codec.serialize_seeded(&resp, rng.gen()).expect("response serializes");
            out.push(Sample { label: format!("resp:{:02x}", f.code()), wire });
        }
    }
    out
}

/// Generates `n` HTTP request samples labeled by method.
pub fn http_requests<R: Rng + ?Sized>(codec: &Codec, n: usize, rng: &mut R) -> Vec<Sample> {
    (0..n)
        .map(|_| {
            let m = http::build_request(codec, rng);
            let label = http::request_label(&m);
            let wire = codec.serialize_seeded(&m, rng.gen()).expect("generated request serializes");
            Sample { label, wire }
        })
        .collect()
}

/// Generates a DNS trace: `n` queries and `n` responses, labeled by
/// direction.
pub fn dns_trace<R: Rng + ?Sized>(
    query_codec: &Codec,
    resp_codec: &Codec,
    n: usize,
    rng: &mut R,
) -> Vec<Sample> {
    let mut out = Vec::with_capacity(n * 2);
    for _ in 0..n {
        let q = dns::build_query(query_codec, rng);
        let wire = query_codec.serialize_seeded(&q, rng.gen()).expect("query serializes");
        out.push(Sample { label: "query".to_string(), wire });
        let r = dns::build_response(resp_codec, rng);
        let wire = resp_codec.serialize_seeded(&r, rng.gen()).expect("response serializes");
        out.push(Sample { label: "response".to_string(), wire });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modbus_corpus_covers_all_types() {
        let codec = Codec::identity(&modbus::request_graph());
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = modbus_requests(&codec, 3, &mut rng);
        assert_eq!(corpus.len(), 24);
        let labels: std::collections::BTreeSet<_> =
            corpus.iter().map(|s| s.label.clone()).collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn trace_interleaves_requests_and_responses() {
        let req = Codec::identity(&modbus::request_graph());
        let resp = Codec::identity(&modbus::response_graph());
        let mut rng = StdRng::seed_from_u64(2);
        let fs = [modbus::Function::ReadCoils, modbus::Function::WriteSingleRegister];
        let trace = modbus_trace(&req, &resp, &fs, 2, &mut rng);
        assert_eq!(trace.len(), 8);
        assert!(trace.iter().any(|s| s.label.starts_with("resp:")));
    }

    #[test]
    fn http_corpus_is_labeled_by_method() {
        let codec = Codec::identity(&http::request_graph());
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = http_requests(&codec, 30, &mut rng);
        assert_eq!(corpus.len(), 30);
        assert!(corpus.iter().all(|s| s.label.starts_with("req:")));
        assert!(!corpus.iter().all(|s| s.label == corpus[0].label));
    }
}

//! Modbus/TCP message formats and core application (paper §VII).
//!
//! The paper evaluates the framework on TCP-Modbus with the request and
//! response messages of function codes 1, 2, 3, 4, 5, 6, 15 and 16 (the
//! set exercised by the simplymodbus client), plus exception responses.
//! The format contains a Tabular field, a Length boundary and a Counter
//! boundary — exactly the features called out in §VII.

use protoobf_core::{Codec, FormatGraph, Message};
use rand::Rng;

/// Specification of Modbus/TCP requests (MBAP header + PDU).
pub const REQUEST_SPEC: &str = r#"
message ModbusRequest {
    u16 transaction_id;
    u16 protocol_id;
    u16 length = len(pdu);
    seq pdu {
        u8 unit_id;
        u8 function;
        optional read_coils if function == 0x01 {
            u16 rc_start;
            u16 rc_quantity;
        }
        optional read_discrete if function == 0x02 {
            u16 rd_start;
            u16 rd_quantity;
        }
        optional read_holding if function == 0x03 {
            u16 rh_start;
            u16 rh_quantity;
        }
        optional read_input if function == 0x04 {
            u16 ri_start;
            u16 ri_quantity;
        }
        optional write_coil if function == 0x05 {
            u16 wc_address;
            u16 wc_value;
        }
        optional write_register if function == 0x06 {
            u16 wr_address;
            u16 wr_value;
        }
        optional write_coils if function == 0x0F {
            u16 wmc_start;
            u16 wmc_quantity;
            u8 wmc_byte_count = len(wmc_values);
            bytes wmc_values sized_by wmc_byte_count;
        }
        optional write_registers if function == 0x10 {
            u16 wmr_start;
            u16 wmr_quantity;
            u8 wmr_byte_count = len(wmr_values);
            tabular wmr_values count_by wmr_quantity {
                u16 wmr_value;
            }
        }
    }
}
"#;

/// Specification of Modbus/TCP responses (normal and exception).
pub const RESPONSE_SPEC: &str = r#"
message ModbusResponse {
    u16 transaction_id;
    u16 protocol_id;
    u16 length = len(pdu);
    seq pdu {
        u8 unit_id;
        u8 function;
        optional read_coils if function == 0x01 {
            u8 rc_byte_count = len(rc_status);
            bytes rc_status sized_by rc_byte_count;
        }
        optional read_discrete if function == 0x02 {
            u8 rd_byte_count = len(rd_status);
            bytes rd_status sized_by rd_byte_count;
        }
        optional read_holding if function == 0x03 {
            u8 rh_byte_count = len(rh_values);
            bytes rh_values sized_by rh_byte_count;
        }
        optional read_input if function == 0x04 {
            u8 ri_byte_count = len(ri_values);
            bytes ri_values sized_by ri_byte_count;
        }
        optional write_coil if function == 0x05 {
            u16 wc_address;
            u16 wc_value;
        }
        optional write_register if function == 0x06 {
            u16 wr_address;
            u16 wr_value;
        }
        optional write_coils if function == 0x0F {
            u16 wmc_start;
            u16 wmc_quantity;
        }
        optional write_registers if function == 0x10 {
            u16 wmr_start;
            u16 wmr_quantity;
        }
        optional exception if function in [0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x8F, 0x90] {
            u8 exception_code;
        }
    }
}
"#;

/// The request format graph.
///
/// # Panics
///
/// Never: the embedded specification is tested.
pub fn request_graph() -> FormatGraph {
    protoobf_spec::parse_spec(REQUEST_SPEC).expect("embedded Modbus request spec is valid")
}

/// The response format graph.
pub fn response_graph() -> FormatGraph {
    protoobf_spec::parse_spec(RESPONSE_SPEC).expect("embedded Modbus response spec is valid")
}

/// The Modbus function codes the paper's experiments cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Function {
    /// FC 0x01.
    ReadCoils,
    /// FC 0x02.
    ReadDiscreteInputs,
    /// FC 0x03.
    ReadHoldingRegisters,
    /// FC 0x04.
    ReadInputRegisters,
    /// FC 0x05.
    WriteSingleCoil,
    /// FC 0x06.
    WriteSingleRegister,
    /// FC 0x0F.
    WriteMultipleCoils,
    /// FC 0x10.
    WriteMultipleRegisters,
}

impl Function {
    /// All eight function codes, in code order.
    pub const ALL: [Function; 8] = [
        Function::ReadCoils,
        Function::ReadDiscreteInputs,
        Function::ReadHoldingRegisters,
        Function::ReadInputRegisters,
        Function::WriteSingleCoil,
        Function::WriteSingleRegister,
        Function::WriteMultipleCoils,
        Function::WriteMultipleRegisters,
    ];

    /// The wire function code.
    pub fn code(self) -> u8 {
        match self {
            Function::ReadCoils => 0x01,
            Function::ReadDiscreteInputs => 0x02,
            Function::ReadHoldingRegisters => 0x03,
            Function::ReadInputRegisters => 0x04,
            Function::WriteSingleCoil => 0x05,
            Function::WriteSingleRegister => 0x06,
            Function::WriteMultipleCoils => 0x0F,
            Function::WriteMultipleRegisters => 0x10,
        }
    }

    /// The optional-body name in the specification.
    pub fn body(self) -> &'static str {
        match self {
            Function::ReadCoils => "read_coils",
            Function::ReadDiscreteInputs => "read_discrete",
            Function::ReadHoldingRegisters => "read_holding",
            Function::ReadInputRegisters => "read_input",
            Function::WriteSingleCoil => "write_coil",
            Function::WriteSingleRegister => "write_register",
            Function::WriteMultipleCoils => "write_coils",
            Function::WriteMultipleRegisters => "write_registers",
        }
    }

    /// Ground-truth label for classification experiments.
    pub fn label(self) -> String {
        format!("req:{:02x}", self.code())
    }
}

/// Builds a request message with random field values (the paper's core
/// application generates "different messages with random values").
///
/// # Panics
///
/// Never for codecs built from [`request_graph`].
pub fn build_request<'c, R: Rng + ?Sized>(
    codec: &'c Codec,
    function: Function,
    rng: &mut R,
) -> Message<'c> {
    let mut m = codec.message_seeded(rng.gen());
    m.set_uint("transaction_id", rng.gen_range(0..=0xFFFF)).unwrap();
    m.set_uint("protocol_id", 0).unwrap();
    m.set_uint("pdu.unit_id", rng.gen_range(1..=32)).unwrap();
    m.set_uint("pdu.function", u64::from(function.code())).unwrap();
    let body = function.body();
    match function {
        Function::ReadCoils
        | Function::ReadDiscreteInputs
        | Function::ReadHoldingRegisters
        | Function::ReadInputRegisters => {
            let prefix = match function {
                Function::ReadCoils => "rc",
                Function::ReadDiscreteInputs => "rd",
                Function::ReadHoldingRegisters => "rh",
                _ => "ri",
            };
            m.set_uint(&format!("pdu.{body}.{prefix}_start"), rng.gen_range(0..=255)).unwrap();
            m.set_uint(&format!("pdu.{body}.{prefix}_quantity"), rng.gen_range(1..=16)).unwrap();
        }
        Function::WriteSingleCoil => {
            m.set_uint("pdu.write_coil.wc_address", rng.gen_range(0..=255)).unwrap();
            let on: bool = rng.gen();
            m.set_uint("pdu.write_coil.wc_value", if on { 0xFF00 } else { 0x0000 }).unwrap();
        }
        Function::WriteSingleRegister => {
            m.set_uint("pdu.write_register.wr_address", rng.gen_range(0..=255)).unwrap();
            m.set_uint("pdu.write_register.wr_value", rng.gen_range(0..=0xFFFF)).unwrap();
        }
        Function::WriteMultipleCoils => {
            let quantity: u64 = rng.gen_range(1..=16);
            let nbytes = (quantity as usize).div_ceil(8);
            m.set_uint("pdu.write_coils.wmc_start", rng.gen_range(0..=255)).unwrap();
            m.set_uint("pdu.write_coils.wmc_quantity", quantity).unwrap();
            let bits: Vec<u8> = (0..nbytes).map(|_| rng.gen()).collect();
            m.set("pdu.write_coils.wmc_values", bits).unwrap();
        }
        Function::WriteMultipleRegisters => {
            let quantity = rng.gen_range(1..=5usize);
            m.set_uint("pdu.write_registers.wmr_start", rng.gen_range(0..=255)).unwrap();
            m.set_uint("pdu.write_registers.wmr_quantity", quantity as u64).unwrap();
            for i in 0..quantity {
                m.set_uint(
                    &format!("pdu.write_registers.wmr_values[{i}].wmr_value"),
                    rng.gen_range(0..=0xFFFF),
                )
                .unwrap();
            }
        }
    }
    m
}

/// Builds the response to a request of the given function code, with
/// random payload values (and a small chance of an exception response when
/// `allow_exception` is set).
pub fn build_response<'c, R: Rng + ?Sized>(
    codec: &'c Codec,
    function: Function,
    allow_exception: bool,
    rng: &mut R,
) -> Message<'c> {
    let mut m = codec.message_seeded(rng.gen());
    m.set_uint("transaction_id", rng.gen_range(0..=0xFFFF)).unwrap();
    m.set_uint("protocol_id", 0).unwrap();
    m.set_uint("pdu.unit_id", rng.gen_range(1..=32)).unwrap();
    if allow_exception && rng.gen_bool(0.1) {
        m.set_uint("pdu.function", u64::from(function.code() | 0x80)).unwrap();
        m.set_uint("pdu.exception.exception_code", rng.gen_range(1..=4)).unwrap();
        return m;
    }
    m.set_uint("pdu.function", u64::from(function.code())).unwrap();
    match function {
        Function::ReadCoils | Function::ReadDiscreteInputs => {
            let prefix = if function == Function::ReadCoils { "rc" } else { "rd" };
            let n = rng.gen_range(1..=4usize);
            let status: Vec<u8> = (0..n).map(|_| rng.gen()).collect();
            m.set(&format!("pdu.{}.{prefix}_status", function.body()), status).unwrap();
        }
        Function::ReadHoldingRegisters | Function::ReadInputRegisters => {
            let prefix = if function == Function::ReadHoldingRegisters { "rh" } else { "ri" };
            let n = rng.gen_range(1..=8usize);
            let values: Vec<u8> = (0..n * 2).map(|_| rng.gen()).collect();
            m.set(&format!("pdu.{}.{prefix}_values", function.body()), values).unwrap();
        }
        Function::WriteSingleCoil => {
            m.set_uint("pdu.write_coil.wc_address", rng.gen_range(0..=255)).unwrap();
            m.set_uint("pdu.write_coil.wc_value", 0xFF00).unwrap();
        }
        Function::WriteSingleRegister => {
            m.set_uint("pdu.write_register.wr_address", rng.gen_range(0..=255)).unwrap();
            m.set_uint("pdu.write_register.wr_value", rng.gen_range(0..=0xFFFF)).unwrap();
        }
        Function::WriteMultipleCoils => {
            m.set_uint("pdu.write_coils.wmc_start", rng.gen_range(0..=255)).unwrap();
            m.set_uint("pdu.write_coils.wmc_quantity", rng.gen_range(1..=16)).unwrap();
        }
        Function::WriteMultipleRegisters => {
            m.set_uint("pdu.write_registers.wmr_start", rng.gen_range(0..=255)).unwrap();
            m.set_uint("pdu.write_registers.wmr_quantity", rng.gen_range(1..=5)).unwrap();
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoobf_core::Obfuscator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn specs_parse_and_validate() {
        let req = request_graph();
        let resp = response_graph();
        assert_eq!(req.name(), "ModbusRequest");
        assert_eq!(resp.name(), "ModbusResponse");
        // The paper notes the Modbus graph is large (≈48 transformations at
        // one per node): ours is in the same regime.
        assert!(req.len() >= 35, "request graph has {} nodes", req.len());
        assert!(resp.len() >= 30, "response graph has {} nodes", resp.len());
    }

    #[test]
    fn plain_wire_format_matches_real_modbus_fc03() {
        let g = request_graph();
        let codec = Codec::identity(&g);
        let mut m = codec.message_seeded(1);
        m.set_uint("transaction_id", 0x0001).unwrap();
        m.set_uint("protocol_id", 0).unwrap();
        m.set_uint("pdu.unit_id", 0x11).unwrap();
        m.set_uint("pdu.function", 0x03).unwrap();
        m.set_uint("pdu.read_holding.rh_start", 0x006B).unwrap();
        m.set_uint("pdu.read_holding.rh_quantity", 3).unwrap();
        let wire = codec.serialize_seeded(&m, 1).unwrap();
        // Classic simplymodbus example frame.
        assert_eq!(
            wire,
            vec![0x00, 0x01, 0x00, 0x00, 0x00, 0x06, 0x11, 0x03, 0x00, 0x6B, 0x00, 0x03]
        );
    }

    #[test]
    fn plain_wire_format_matches_real_modbus_fc16() {
        let g = request_graph();
        let codec = Codec::identity(&g);
        let mut m = codec.message_seeded(1);
        m.set_uint("transaction_id", 0x0001).unwrap();
        m.set_uint("protocol_id", 0).unwrap();
        m.set_uint("pdu.unit_id", 0x11).unwrap();
        m.set_uint("pdu.function", 0x10).unwrap();
        m.set_uint("pdu.write_registers.wmr_start", 0x0001).unwrap();
        m.set_uint("pdu.write_registers.wmr_quantity", 2).unwrap();
        m.set_uint("pdu.write_registers.wmr_values[0].wmr_value", 0x000A).unwrap();
        m.set_uint("pdu.write_registers.wmr_values[1].wmr_value", 0x0102).unwrap();
        let wire = codec.serialize_seeded(&m, 1).unwrap();
        assert_eq!(
            wire,
            vec![
                0x00, 0x01, 0x00, 0x00, 0x00, 0x0B, 0x11, 0x10, 0x00, 0x01, 0x00, 0x02, 0x04, 0x00,
                0x0A, 0x01, 0x02
            ]
        );
    }

    #[test]
    fn all_request_types_roundtrip_plain() {
        let g = request_graph();
        let codec = Codec::identity(&g);
        let mut rng = StdRng::seed_from_u64(3);
        for f in Function::ALL {
            let m = build_request(&codec, f, &mut rng);
            let wire = codec.serialize_seeded(&m, 1).unwrap();
            let back = codec.parse(&wire).unwrap();
            assert_eq!(back.get_uint("pdu.function").unwrap(), u64::from(f.code()));
            assert!(back.is_present(&format!("pdu.{}", f.body())), "{f:?}");
        }
    }

    #[test]
    fn all_response_types_roundtrip_plain() {
        let g = response_graph();
        let codec = Codec::identity(&g);
        let mut rng = StdRng::seed_from_u64(4);
        for f in Function::ALL {
            let m = build_response(&codec, f, false, &mut rng);
            let wire = codec.serialize_seeded(&m, 1).unwrap();
            let back = codec.parse(&wire).unwrap();
            assert_eq!(back.get_uint("pdu.function").unwrap(), u64::from(f.code()));
        }
    }

    #[test]
    fn exception_response_roundtrips() {
        let g = response_graph();
        let codec = Codec::identity(&g);
        let mut m = codec.message_seeded(1);
        m.set_uint("transaction_id", 5).unwrap();
        m.set_uint("protocol_id", 0).unwrap();
        m.set_uint("pdu.unit_id", 1).unwrap();
        m.set_uint("pdu.function", 0x83).unwrap();
        m.set_uint("pdu.exception.exception_code", 2).unwrap();
        let wire = codec.serialize_seeded(&m, 1).unwrap();
        assert_eq!(wire[7], 0x83);
        let back = codec.parse(&wire).unwrap();
        assert!(back.is_present("pdu.exception"));
        assert_eq!(back.get_uint("pdu.exception.exception_code").unwrap(), 2);
    }

    #[test]
    fn obfuscated_requests_roundtrip_all_functions() {
        let g = request_graph();
        for level in 1..=3u32 {
            for seed in 0..5u64 {
                let codec = Obfuscator::new(&g).seed(seed).max_per_node(level).obfuscate().unwrap();
                let mut rng = StdRng::seed_from_u64(seed + 100);
                for f in Function::ALL {
                    let m = build_request(&codec, f, &mut rng);
                    let wire = codec
                        .serialize_seeded(&m, seed)
                        .unwrap_or_else(|e| panic!("{f:?} level {level} seed {seed}: {e}"));
                    let back = codec
                        .parse(&wire)
                        .unwrap_or_else(|e| panic!("{f:?} level {level} seed {seed}: {e}"));
                    assert_eq!(back.get_uint("pdu.function").unwrap(), u64::from(f.code()));
                }
            }
        }
    }

    #[test]
    fn obfuscated_responses_roundtrip_all_functions() {
        let g = response_graph();
        for seed in 0..5u64 {
            let codec = Obfuscator::new(&g).seed(seed).max_per_node(2).obfuscate().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for f in Function::ALL {
                let m = build_response(&codec, f, true, &mut rng);
                let wire = codec.serialize_seeded(&m, seed).unwrap();
                codec.parse(&wire).unwrap_or_else(|e| panic!("{f:?} seed {seed}: {e}"));
            }
        }
    }
}

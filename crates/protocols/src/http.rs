//! Simplified HTTP/1.1 message formats and core application (paper §VII).
//!
//! The paper's HTTP implementation "doesn't create messages with
//! consistent values for the keywords" — keyword consistency is the
//! server's concern, not the parser's — so the generators below draw
//! methods, URIs and header values at random. The format exercises an
//! Optional field, a Repetition and Delimited boundaries, the features the
//! paper highlights for HTTP.

use protoobf_core::{Codec, FormatGraph, Message};
use rand::seq::SliceRandom;
use rand::Rng;

/// Specification of HTTP requests.
pub const REQUEST_SPEC: &str = r#"
message HttpRequest {
    ascii method until " ";
    ascii uri until " ";
    ascii version until "\r\n";
    repeat headers until "\r\n" {
        ascii name until ": ";
        ascii value until "\r\n";
    }
    optional body if method == "POST" {
        bytes content rest;
    }
}
"#;

/// Specification of HTTP responses.
pub const RESPONSE_SPEC: &str = r#"
message HttpResponse {
    ascii version until " ";
    ascii status until " ";
    ascii reason until "\r\n";
    repeat headers until "\r\n" {
        ascii name until ": ";
        ascii value until "\r\n";
    }
    bytes content rest;
}
"#;

/// The request format graph.
pub fn request_graph() -> FormatGraph {
    protoobf_spec::parse_spec(REQUEST_SPEC).expect("embedded HTTP request spec is valid")
}

/// The response format graph.
pub fn response_graph() -> FormatGraph {
    protoobf_spec::parse_spec(RESPONSE_SPEC).expect("embedded HTTP response spec is valid")
}

const METHODS: &[&str] = &["GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS"];
const PATHS: &[&str] =
    &["index.html", "api/v1/items", "static/app.js", "login", "search", "images/logo.png"];
const HEADER_NAMES: &[&str] = &[
    "Host",
    "User-Agent",
    "Accept",
    "Accept-Language",
    "Connection",
    "Cache-Control",
    "Content-Type",
    "Cookie",
];
const HOSTS: &[&str] = &["example.org", "intranet.local", "files.example.net"];
const STATUSES: &[(&str, &str)] =
    &[("200", "OK"), ("404", "Not Found"), ("301", "Moved Permanently"), ("500", "Server Error")];

/// Builds a request with random (not necessarily consistent) values.
///
/// # Panics
///
/// Never for codecs built from [`request_graph`].
pub fn build_request<'c, R: Rng + ?Sized>(codec: &'c Codec, rng: &mut R) -> Message<'c> {
    let mut m = codec.message_seeded(rng.gen());
    let method = *METHODS.choose(rng).expect("non-empty");
    m.set_str("method", method).unwrap();
    m.set_str("uri", &format!("/{}", PATHS.choose(rng).expect("non-empty"))).unwrap();
    m.set_str("version", "HTTP/1.1").unwrap();
    let mut names: Vec<&str> = HEADER_NAMES.to_vec();
    names.shuffle(rng);
    let n = rng.gen_range(1..=5usize);
    for (i, name) in names.iter().take(n).enumerate() {
        m.set_str(&format!("headers[{i}].name"), name).unwrap();
        let value = match *name {
            "Host" => (*HOSTS.choose(rng).expect("non-empty")).to_string(),
            "Connection" => "keep-alive".to_string(),
            _ => format!("v{}", rng.gen_range(0..10_000)),
        };
        m.set_str(&format!("headers[{i}].value"), &value).unwrap();
    }
    if method == "POST" {
        let len = rng.gen_range(0..=64usize);
        let body: Vec<u8> = (0..len).map(|_| rng.gen_range(0x20..0x7f)).collect();
        m.set("body.content", body).unwrap();
        m.mark_present("body").unwrap();
    }
    m
}

/// Builds a response with random values.
pub fn build_response<'c, R: Rng + ?Sized>(codec: &'c Codec, rng: &mut R) -> Message<'c> {
    let mut m = codec.message_seeded(rng.gen());
    let (status, reason) = *STATUSES.choose(rng).expect("non-empty");
    m.set_str("version", "HTTP/1.1").unwrap();
    m.set_str("status", status).unwrap();
    m.set_str("reason", reason).unwrap();
    let n = rng.gen_range(1..=4usize);
    let mut names: Vec<&str> = HEADER_NAMES.to_vec();
    names.shuffle(rng);
    for (i, name) in names.iter().take(n).enumerate() {
        m.set_str(&format!("headers[{i}].name"), name).unwrap();
        m.set_str(&format!("headers[{i}].value"), &format!("r{}", rng.gen_range(0..10_000)))
            .unwrap();
    }
    let len = rng.gen_range(0..=128usize);
    let body: Vec<u8> = (0..len).map(|_| rng.gen_range(0x20..0x7f)).collect();
    m.set("content", body).unwrap();
    m
}

/// Ground-truth label of a request for classification experiments.
pub fn request_label(m: &Message<'_>) -> String {
    format!("req:{}", m.get_string("method").unwrap_or_else(|_| "?".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoobf_core::Obfuscator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn specs_parse() {
        assert_eq!(request_graph().name(), "HttpRequest");
        assert_eq!(response_graph().name(), "HttpResponse");
        // The paper reports ≈10 transformations at one per node for HTTP.
        let n = request_graph().len();
        assert!((8..=16).contains(&n), "HTTP request graph has {n} nodes");
    }

    #[test]
    fn plain_wire_format_is_classic_http() {
        let g = request_graph();
        let codec = Codec::identity(&g);
        let mut m = codec.message_seeded(1);
        m.set_str("method", "GET").unwrap();
        m.set_str("uri", "/index.html").unwrap();
        m.set_str("version", "HTTP/1.1").unwrap();
        m.set_str("headers[0].name", "Host").unwrap();
        m.set_str("headers[0].value", "example.org").unwrap();
        let wire = codec.serialize_seeded(&m, 1).unwrap();
        assert_eq!(wire, b"GET /index.html HTTP/1.1\r\nHost: example.org\r\n\r\n");
    }

    #[test]
    fn post_with_body_roundtrips() {
        let g = request_graph();
        let codec = Codec::identity(&g);
        let mut m = codec.message_seeded(1);
        m.set_str("method", "POST").unwrap();
        m.set_str("uri", "/login").unwrap();
        m.set_str("version", "HTTP/1.1").unwrap();
        m.set_str("headers[0].name", "Host").unwrap();
        m.set_str("headers[0].value", "example.org").unwrap();
        m.set("body.content", b"user=x&pass=y".as_slice()).unwrap();
        let wire = codec.serialize_seeded(&m, 1).unwrap();
        let back = codec.parse(&wire).unwrap();
        assert!(back.is_present("body"));
        assert_eq!(back.get_string("body.content").unwrap(), "user=x&pass=y");
    }

    #[test]
    fn random_requests_roundtrip_plain() {
        let g = request_graph();
        let codec = Codec::identity(&g);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let m = build_request(&codec, &mut rng);
            let wire = codec.serialize_seeded(&m, 1).unwrap();
            let back = codec.parse(&wire).unwrap();
            assert_eq!(back.get_string("method").unwrap(), m.get_string("method").unwrap());
            assert_eq!(back.element_count("headers"), m.element_count("headers"));
        }
    }

    #[test]
    fn random_responses_roundtrip_plain() {
        let g = response_graph();
        let codec = Codec::identity(&g);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let m = build_response(&codec, &mut rng);
            let wire = codec.serialize_seeded(&m, 1).unwrap();
            let back = codec.parse(&wire).unwrap();
            assert_eq!(back.get_string("status").unwrap(), m.get_string("status").unwrap());
        }
    }

    #[test]
    fn obfuscated_http_roundtrips() {
        let g = request_graph();
        for level in 1..=3u32 {
            for seed in 0..5u64 {
                let codec = Obfuscator::new(&g).seed(seed).max_per_node(level).obfuscate().unwrap();
                let mut rng = StdRng::seed_from_u64(seed + 50);
                for _ in 0..10 {
                    let m = build_request(&codec, &mut rng);
                    let wire = codec.serialize_seeded(&m, seed).unwrap_or_else(|e| {
                        panic!("level {level} seed {seed}: {e}\n{:#?}", codec.records())
                    });
                    let back = codec.parse(&wire).unwrap_or_else(|e| {
                        panic!("level {level} seed {seed}: {e}\n{:#?}", codec.records())
                    });
                    assert_eq!(back.get_string("uri").unwrap(), m.get_string("uri").unwrap());
                }
            }
        }
    }

    #[test]
    fn request_label_uses_method() {
        let g = request_graph();
        let codec = Codec::identity(&g);
        let mut rng = StdRng::seed_from_u64(9);
        let m = build_request(&codec, &mut rng);
        assert!(request_label(&m).starts_with("req:"));
    }
}

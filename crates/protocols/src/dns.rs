//! Simplified DNS message formats — a third evaluation protocol beyond the
//! paper's two.
//!
//! DNS exercises the features the paper's protocols do not combine:
//! *per-element* length prefixes (labels inside names), a zero-byte name
//! terminator whose ambiguity rules mirror real DNS (a label length can
//! never be zero), constant header fields, and tabular sections counted by
//! header fields. Compression pointers are out of scope (the paper's
//! framework has no backreference primitive either).

use protoobf_core::{Codec, FormatGraph, Message};
use rand::seq::SliceRandom;
use rand::Rng;

/// Specification of DNS queries (header + question section).
pub const QUERY_SPEC: &str = r#"
message DnsQuery {
    u16 id;
    u16 flags;
    u16 qdcount = count(questions);
    u16 ancount = const 0;
    u16 nscount = const 0;
    u16 arcount = const 0;
    tabular questions count_by qdcount {
        repeat qname until "\x00" {
            u8 label_len = len(label);
            bytes label sized_by label_len;
        }
        u16 qtype;
        u16 qclass;
    }
}
"#;

/// Specification of DNS responses (header + question echo + answers).
pub const RESPONSE_SPEC: &str = r#"
message DnsResponse {
    u16 id;
    u16 flags;
    u16 qdcount = count(questions);
    u16 ancount = count(answers);
    u16 nscount = const 0;
    u16 arcount = const 0;
    tabular questions count_by qdcount {
        repeat qname until "\x00" {
            u8 label_len = len(label);
            bytes label sized_by label_len;
        }
        u16 qtype;
        u16 qclass;
    }
    tabular answers count_by ancount {
        repeat aname until "\x00" {
            u8 alabel_len = len(alabel);
            bytes alabel sized_by alabel_len;
        }
        u16 atype;
        u16 aclass;
        u32 ttl;
        u16 rdlength = len(rdata);
        bytes rdata sized_by rdlength;
    }
}
"#;

/// The query format graph.
pub fn query_graph() -> FormatGraph {
    protoobf_spec::parse_spec(QUERY_SPEC).expect("embedded DNS query spec is valid")
}

/// The response format graph.
pub fn response_graph() -> FormatGraph {
    protoobf_spec::parse_spec(RESPONSE_SPEC).expect("embedded DNS response spec is valid")
}

const WORDS: &[&str] =
    &["www", "mail", "api", "cdn", "example", "internal", "files", "net", "org", "com", "lab"];

/// Record types the generator draws from (A, NS, CNAME, MX, TXT, AAAA).
const QTYPES: &[u64] = &[1, 2, 5, 15, 16, 28];

fn set_name<R: Rng + ?Sized>(m: &mut Message<'_>, prefix: &str, label_field: &str, rng: &mut R) {
    let labels = rng.gen_range(2..=4usize);
    for i in 0..labels {
        let word = WORDS.choose(rng).expect("non-empty");
        m.set(&format!("{prefix}[{i}].{label_field}"), word.as_bytes()).expect("label fits");
    }
}

/// Builds a query with 1–2 random questions.
///
/// # Panics
///
/// Never for codecs built from [`query_graph`].
pub fn build_query<'c, R: Rng + ?Sized>(codec: &'c Codec, rng: &mut R) -> Message<'c> {
    let mut m = codec.message_seeded(rng.gen());
    m.set_uint("id", rng.gen_range(0..=0xFFFF)).unwrap();
    m.set_uint("flags", 0x0100).unwrap(); // recursion desired
    let qd = rng.gen_range(1..=2usize);
    for q in 0..qd {
        set_name(&mut m, &format!("questions[{q}].qname"), "label", rng);
        m.set_uint(&format!("questions[{q}].qtype"), *QTYPES.choose(rng).expect("non-empty"))
            .unwrap();
        m.set_uint(&format!("questions[{q}].qclass"), 1).unwrap(); // IN
    }
    m
}

/// Builds a response echoing one question with 1–3 answers.
pub fn build_response<'c, R: Rng + ?Sized>(codec: &'c Codec, rng: &mut R) -> Message<'c> {
    let mut m = codec.message_seeded(rng.gen());
    m.set_uint("id", rng.gen_range(0..=0xFFFF)).unwrap();
    m.set_uint("flags", 0x8180).unwrap(); // standard response
    set_name(&mut m, "questions[0].qname", "label", rng);
    m.set_uint("questions[0].qtype", 1).unwrap();
    m.set_uint("questions[0].qclass", 1).unwrap();
    let an = rng.gen_range(1..=3usize);
    for a in 0..an {
        set_name(&mut m, &format!("answers[{a}].aname"), "alabel", rng);
        m.set_uint(&format!("answers[{a}].atype"), 1).unwrap();
        m.set_uint(&format!("answers[{a}].aclass"), 1).unwrap();
        m.set_uint(&format!("answers[{a}].ttl"), rng.gen_range(60..=86_400)).unwrap();
        let addr: Vec<u8> = (0..4).map(|_| rng.gen()).collect();
        m.set(&format!("answers[{a}].rdata"), addr).unwrap();
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoobf_core::Obfuscator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn specs_parse() {
        assert_eq!(query_graph().name(), "DnsQuery");
        assert_eq!(response_graph().name(), "DnsResponse");
    }

    #[test]
    fn plain_wire_matches_real_dns_layout() {
        let g = query_graph();
        let codec = Codec::identity(&g);
        let mut m = codec.message_seeded(1);
        m.set_uint("id", 0xBEEF).unwrap();
        m.set_uint("flags", 0x0100).unwrap();
        m.set("questions[0].qname[0].label", b"www".as_slice()).unwrap();
        m.set("questions[0].qname[1].label", b"example".as_slice()).unwrap();
        m.set("questions[0].qname[2].label", b"org".as_slice()).unwrap();
        m.set_uint("questions[0].qtype", 1).unwrap();
        m.set_uint("questions[0].qclass", 1).unwrap();
        let wire = codec.serialize_seeded(&m, 1).unwrap();
        let expected: Vec<u8> = [
            0xBE, 0xEF, // id
            0x01, 0x00, // flags
            0x00, 0x01, // qdcount
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // an/ns/ar counts (const 0)
            3, b'w', b'w', b'w', 7, b'e', b'x', b'a', b'm', b'p', b'l', b'e', 3, b'o', b'r', b'g',
            0, // qname with the root terminator
            0x00, 0x01, // qtype A
            0x00, 0x01, // qclass IN
        ]
        .to_vec();
        assert_eq!(wire, expected);
    }

    #[test]
    fn const_header_fields_are_emitted_and_checked() {
        let g = query_graph();
        let codec = Codec::identity(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = build_query(&codec, &mut rng);
        assert!(m.set_uint("ancount", 3).is_err(), "const fields are not settable");
        let mut wire = codec.serialize_seeded(&m, 1).unwrap();
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.get_uint("ancount").unwrap(), 0);
        // Corrupting a const field must be detected.
        wire[7] ^= 0x01; // low byte of ancount
        assert!(codec.parse(&wire).is_err());
    }

    #[test]
    fn queries_roundtrip_plain_and_obfuscated() {
        let g = query_graph();
        for level in 0..=3u32 {
            let codec = if level == 0 {
                Codec::identity(&g)
            } else {
                Obfuscator::new(&g).seed(u64::from(level)).max_per_node(level).obfuscate().unwrap()
            };
            let mut rng = StdRng::seed_from_u64(u64::from(level) + 5);
            for _ in 0..10 {
                let m = build_query(&codec, &mut rng);
                let wire = codec.serialize_seeded(&m, 2).unwrap();
                let back = codec
                    .parse(&wire)
                    .unwrap_or_else(|e| panic!("level {level}: {e}\nplan: {:#?}", codec.records()));
                assert_eq!(back.get_uint("id").unwrap(), m.get_uint("id").unwrap());
                let qd = m.element_count("questions");
                assert_eq!(back.element_count("questions"), qd);
                for q in 0..qd {
                    let labels = m.element_count(&format!("questions[{q}].qname"));
                    assert_eq!(back.element_count(&format!("questions[{q}].qname")), labels);
                    for l in 0..labels {
                        let path = format!("questions[{q}].qname[{l}].label");
                        assert_eq!(back.get(&path).unwrap(), m.get(&path).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn responses_roundtrip_obfuscated() {
        let g = response_graph();
        for seed in 0..4u64 {
            let codec = Obfuscator::new(&g).seed(seed).max_per_node(2).obfuscate().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..5 {
                let m = build_response(&codec, &mut rng);
                let wire = codec.serialize_seeded(&m, seed).unwrap();
                let back = codec
                    .parse(&wire)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\nplan: {:#?}", codec.records()));
                let an = m.element_count("answers");
                assert_eq!(back.element_count("answers"), an);
                for a in 0..an {
                    assert_eq!(
                        back.get_uint(&format!("answers[{a}].ttl")).unwrap(),
                        m.get_uint(&format!("answers[{a}].ttl")).unwrap()
                    );
                    assert_eq!(
                        back.get(&format!("answers[{a}].rdata")).unwrap(),
                        m.get(&format!("answers[{a}].rdata")).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn per_element_length_refs_scope_correctly() {
        // Two questions with different label counts: per-element label_len
        // fields must resolve within their own element scope.
        let g = query_graph();
        let codec = Codec::identity(&g);
        let mut m = codec.message_seeded(1);
        m.set_uint("id", 1).unwrap();
        m.set_uint("flags", 0).unwrap();
        m.set("questions[0].qname[0].label", b"a".as_slice()).unwrap();
        m.set("questions[1].qname[0].label", b"longer".as_slice()).unwrap();
        m.set("questions[1].qname[1].label", b"name".as_slice()).unwrap();
        for q in 0..2 {
            m.set_uint(&format!("questions[{q}].qtype"), 1).unwrap();
            m.set_uint(&format!("questions[{q}].qclass"), 1).unwrap();
        }
        let wire = codec.serialize_seeded(&m, 1).unwrap();
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.get_string("questions[1].qname[0].label").unwrap(), "longer");
        assert_eq!(back.element_count("questions[0].qname"), 1);
        assert_eq!(back.element_count("questions[1].qname"), 2);
    }
}

//! # protoobf-protocols
//!
//! The two application protocols the paper evaluates ProtoObf on
//! (§VII): **Modbus/TCP** (binary; Tabular field, Length and Counter
//! boundaries) and **HTTP/1.1** (text; Optional field, Repetition,
//! Delimited boundaries) — together with *core applications* that build
//! random request/response populations, and corpus helpers for the
//! classification/resilience experiments.
//!
//! ```
//! use protoobf_core::{Codec, Obfuscator};
//! use protoobf_protocols::modbus;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = modbus::request_graph();
//! let codec = Obfuscator::new(&graph).seed(1).max_per_node(1).obfuscate()?;
//! let mut rng = rand::thread_rng();
//! let msg = modbus::build_request(&codec, modbus::Function::ReadCoils, &mut rng);
//! let wire = codec.serialize(&msg)?;
//! let back = codec.parse(&wire)?;
//! assert_eq!(back.get_uint("pdu.function")?, 0x01);
//! # Ok(())
//! # }
//! ```

pub mod corpus;
pub mod dns;
pub mod http;
pub mod modbus;

//! # protoobf-spec
//!
//! The specification language of the ProtoObf framework (the input the
//! paper feeds through Lex/Yacc). A specification describes a protocol's
//! message format; [`parse_spec`] turns it into a validated
//! [`protoobf_core::FormatGraph`] ready for obfuscation.
//!
//! ```
//! use protoobf_spec::parse_spec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = parse_spec(r#"
//!     message Ping {
//!         u16 id;
//!         u16 length = len(payload);
//!         bytes payload sized_by length;
//!     }
//! "#)?;
//! assert_eq!(graph.name(), "Ping");
//! # Ok(())
//! # }
//! ```
//!
//! ## Language reference
//!
//! * **Terminals** — `u8 … u64` (`…le` for little-endian), `bytes(n)`,
//!   `bytes`/`ascii` with a boundary: `until "…"` (delimited),
//!   `sized_by field` (length-prefixed), `rest` (to the end of the window).
//! * **Auto fields** — `u16 length = len(pdu);`, `u8 n = count(items);`
//!   are filled by the serializer and checked by the parser.
//! * **Constants** — `u16 protocol_id = const 0;`,
//!   `ascii version until " " = const "HTTP/1.1";` are emitted
//!   automatically and verified on parse.
//! * **Sequences** — `seq name { … }`, optionally `sized_by`/`rest`.
//! * **Optionals** — `optional name if field == 0x03 { … }` (also `!=`,
//!   `in [a, b]`; string literals for text subjects).
//! * **Repetitions** — `repeat name until "\r\n" { … }` or
//!   `repeat name rest { … }`.
//! * **Tabulars** — `tabular name count_by field { … }`.
//!
//! References (`sized_by`, `count_by`, `if`) must point at fields declared
//! earlier (parseability); auto targets may point forward.

pub mod ast;
pub mod error;
pub mod lint;
pub mod lower;
pub mod parser;
pub mod print;
pub mod token;

pub use error::ParseSpecError;
pub use print::to_text;

use protoobf_core::FormatGraph;

/// Parses specification text containing exactly one message declaration.
///
/// # Errors
///
/// Lexical, syntactic, reference-resolution or validation errors.
pub fn parse_spec(src: &str) -> Result<FormatGraph, ParseSpecError> {
    let graphs = parse_specs(src)?;
    Ok(graphs.into_iter().next().expect("parse_specs yields at least one message"))
}

/// Parses specification text containing one or more message declarations
/// (e.g. a request and a response format).
///
/// # Errors
///
/// See [`parse_spec`].
pub fn parse_specs(src: &str) -> Result<Vec<FormatGraph>, ParseSpecError> {
    let ast = parser::parse(src)?;
    ast.messages.iter().map(lower::lower).collect()
}

//! Syntax tree of the specification language, produced by
//! [`crate::parser`] and consumed by [`crate::lower`].

use protoobf_core::Endian;

use crate::error::Pos;

/// A parsed specification source: one or more message declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecAst {
    /// Message declarations in source order.
    pub messages: Vec<MessageAst>,
}

/// One `message NAME { ... }` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageAst {
    /// Message (protocol) name.
    pub name: String,
    /// Top-level fields.
    pub fields: Vec<FieldAst>,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// A dotted field reference (`length`, `pdu.function`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefAst {
    /// Path components.
    pub parts: Vec<String>,
    /// Source position.
    pub pos: Pos,
}

impl RefAst {
    /// The reference as written.
    pub fn text(&self) -> String {
        self.parts.join(".")
    }
}

/// Terminal type annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeAst {
    /// Unsigned integer of fixed width and byte order.
    UInt {
        /// Width in bytes (1–8).
        width: usize,
        /// Byte order.
        endian: Endian,
    },
    /// Raw bytes, optionally with a fixed size.
    Bytes(Option<usize>),
    /// Text bytes (structurally identical to `Bytes(None)`).
    Ascii,
}

/// Terminal boundary annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundaryAst {
    /// `until "…"` — delimited.
    Until(Vec<u8>),
    /// `sized_by ref` — length carried by another field.
    SizedBy(RefAst),
    /// `rest` — extends to the end of the window.
    Rest,
}

/// Auto-computation annotations (`= len(x)` / `= count(x)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutoAst {
    /// Plain serialized length of the target.
    Len(RefAst),
    /// Element count of the target.
    Count(RefAst),
    /// A protocol constant, emitted and verified automatically.
    Const(LitAst),
}

/// Sequence window annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowAst {
    /// `sized_by ref`.
    SizedBy(RefAst),
    /// `rest`.
    Rest,
}

/// Condition operator of an `optional … if` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `in [a, b, …]`
    In,
}

/// Literal in a condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LitAst {
    /// Integer (encoded with the subject's width/endianness).
    Int(u64),
    /// Byte string.
    Str(Vec<u8>),
}

/// `optional … if subject <op> values` condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondAst {
    /// The referenced subject field.
    pub subject: RefAst,
    /// Comparison operator.
    pub op: CondOp,
    /// Right-hand literals (one for `==`/`!=`, several for `in`).
    pub values: Vec<LitAst>,
}

/// Repetition stop annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopAst {
    /// `until "…"` — terminator byte string.
    Until(Vec<u8>),
    /// `rest` — repeat until the window is exhausted.
    Rest,
}

/// One field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldAst {
    /// A terminal field.
    Terminal {
        /// Field name.
        name: String,
        /// Declared type.
        ty: TypeAst,
        /// Optional boundary annotation.
        boundary: Option<BoundaryAst>,
        /// Optional auto-computation annotation.
        auto: Option<AutoAst>,
        /// Source position.
        pos: Pos,
    },
    /// `seq name [window] { … }`
    Seq {
        /// Node name.
        name: String,
        /// Optional window annotation.
        window: Option<WindowAst>,
        /// Children.
        fields: Vec<FieldAst>,
        /// Source position.
        pos: Pos,
    },
    /// `optional name if cond { … }`
    Optional {
        /// Node name.
        name: String,
        /// Presence condition.
        cond: CondAst,
        /// Children of the (implicit) body.
        fields: Vec<FieldAst>,
        /// Source position.
        pos: Pos,
    },
    /// `repeat name (until "…" | rest) { … }`
    Repeat {
        /// Node name.
        name: String,
        /// Stop rule.
        stop: StopAst,
        /// Element fields.
        fields: Vec<FieldAst>,
        /// Source position.
        pos: Pos,
    },
    /// `tabular name count_by ref { … }`
    Tabular {
        /// Node name.
        name: String,
        /// The counter field.
        counter: RefAst,
        /// Element fields.
        fields: Vec<FieldAst>,
        /// Source position.
        pos: Pos,
    },
}

impl FieldAst {
    /// The declared field name.
    pub fn name(&self) -> &str {
        match self {
            FieldAst::Terminal { name, .. }
            | FieldAst::Seq { name, .. }
            | FieldAst::Optional { name, .. }
            | FieldAst::Repeat { name, .. }
            | FieldAst::Tabular { name, .. } => name,
        }
    }
}

//! Errors produced while lexing, parsing or lowering a specification.

use std::fmt;

use protoobf_core::SpecError;

/// Position in the specification source, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line number (1-based).
    pub line: u32,
    /// Column number (1-based, in bytes).
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Error raised while turning specification text into a
/// [`protoobf_core::FormatGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSpecError {
    /// A character that cannot start any token.
    UnexpectedChar { pos: Pos, found: char },
    /// A string literal without a closing quote.
    UnterminatedString { pos: Pos },
    /// An invalid escape sequence inside a string literal.
    BadEscape { pos: Pos, escape: String },
    /// A malformed number literal.
    BadNumber { pos: Pos, text: String },
    /// The parser expected something else here.
    Unexpected { pos: Pos, expected: String, found: String },
    /// A name reference did not resolve to a declared field.
    UnknownReference { pos: Pos, name: String },
    /// A name reference matched several declared fields.
    AmbiguousReference { pos: Pos, name: String },
    /// A declaration or literal is inconsistent with its context (bad
    /// boundary combination, literal that does not fit the subject, …).
    BadDeclaration { pos: Pos, reason: String },
    /// The specification is structurally invalid (delegated to graph
    /// validation).
    Invalid(SpecError),
    /// The source contained no `message` declaration.
    NoMessages,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSpecError::UnexpectedChar { pos, found } => {
                write!(f, "{pos}: unexpected character {found:?}")
            }
            ParseSpecError::UnterminatedString { pos } => {
                write!(f, "{pos}: unterminated string literal")
            }
            ParseSpecError::BadEscape { pos, escape } => {
                write!(f, "{pos}: invalid escape sequence \\{escape}")
            }
            ParseSpecError::BadNumber { pos, text } => {
                write!(f, "{pos}: invalid number literal {text:?}")
            }
            ParseSpecError::Unexpected { pos, expected, found } => {
                write!(f, "{pos}: expected {expected}, found {found}")
            }
            ParseSpecError::UnknownReference { pos, name } => {
                write!(f, "{pos}: unknown field reference {name:?}")
            }
            ParseSpecError::AmbiguousReference { pos, name } => {
                write!(f, "{pos}: ambiguous field reference {name:?} (use a dotted path)")
            }
            ParseSpecError::BadDeclaration { pos, reason } => {
                write!(f, "{pos}: {reason}")
            }
            ParseSpecError::Invalid(e) => write!(f, "invalid specification: {e}"),
            ParseSpecError::NoMessages => write!(f, "no message declaration found"),
        }
    }
}

impl std::error::Error for ParseSpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseSpecError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for ParseSpecError {
    fn from(e: SpecError) -> Self {
        ParseSpecError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseSpecError::Unexpected {
            pos: Pos { line: 3, col: 14 },
            expected: "';'".into(),
            found: "'}'".into(),
        };
        let s = e.to_string();
        assert!(s.contains("3:14") && s.contains("';'"));
    }

    #[test]
    fn source_chains_spec_error() {
        use std::error::Error;
        let e = ParseSpecError::Invalid(SpecError::EmptyGraph);
        assert!(e.source().is_some());
    }
}

//! Hand-written lexer for the specification language (the paper used Lex).

use crate::error::{ParseSpecError, Pos};

/// One lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Source position of the first character.
    pub pos: Pos,
}

/// Token kinds of the specification language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal or `0x` hexadecimal).
    Int(u64),
    /// String literal with escapes resolved.
    Str(Vec<u8>),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier {s:?}"),
            TokenKind::Int(n) => format!("integer {n}"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::LBrace => "'{'".to_string(),
            TokenKind::RBrace => "'}'".to_string(),
            TokenKind::LParen => "'('".to_string(),
            TokenKind::RParen => "')'".to_string(),
            TokenKind::LBracket => "'['".to_string(),
            TokenKind::RBracket => "']'".to_string(),
            TokenKind::Semi => "';'".to_string(),
            TokenKind::Comma => "','".to_string(),
            TokenKind::Dot => "'.'".to_string(),
            TokenKind::Eq => "'='".to_string(),
            TokenKind::EqEq => "'=='".to_string(),
            TokenKind::NotEq => "'!='".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// Lexes a full specification source into tokens (ending with
/// [`TokenKind::Eof`]).
///
/// Supports `//` line comments and `/* */` block comments.
///
/// # Errors
///
/// Lexical errors carry the offending position.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseSpecError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }
    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if bytes[i] == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => advance!(1),
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    advance!(1);
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = pos!();
                advance!(2);
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ParseSpecError::UnterminatedString { pos: start });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        advance!(2);
                        break;
                    }
                    advance!(1);
                }
            }
            '{' => push_simple(&mut tokens, TokenKind::LBrace, pos!(), || advance!(1)),
            '}' => push_simple(&mut tokens, TokenKind::RBrace, pos!(), || advance!(1)),
            '(' => push_simple(&mut tokens, TokenKind::LParen, pos!(), || advance!(1)),
            ')' => push_simple(&mut tokens, TokenKind::RParen, pos!(), || advance!(1)),
            '[' => push_simple(&mut tokens, TokenKind::LBracket, pos!(), || advance!(1)),
            ']' => push_simple(&mut tokens, TokenKind::RBracket, pos!(), || advance!(1)),
            ';' => push_simple(&mut tokens, TokenKind::Semi, pos!(), || advance!(1)),
            ',' => push_simple(&mut tokens, TokenKind::Comma, pos!(), || advance!(1)),
            '.' => push_simple(&mut tokens, TokenKind::Dot, pos!(), || advance!(1)),
            '=' => {
                let p = pos!();
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    advance!(2);
                    tokens.push(Token { kind: TokenKind::EqEq, pos: p });
                } else {
                    advance!(1);
                    tokens.push(Token { kind: TokenKind::Eq, pos: p });
                }
            }
            '!' => {
                let p = pos!();
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    advance!(2);
                    tokens.push(Token { kind: TokenKind::NotEq, pos: p });
                } else {
                    return Err(ParseSpecError::UnexpectedChar { pos: p, found: '!' });
                }
            }
            '"' => {
                let p = pos!();
                advance!(1);
                let mut out = Vec::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseSpecError::UnterminatedString { pos: p });
                    }
                    match bytes[i] {
                        b'"' => {
                            advance!(1);
                            break;
                        }
                        b'\\' => {
                            if i + 1 >= bytes.len() {
                                return Err(ParseSpecError::UnterminatedString { pos: p });
                            }
                            let esc = bytes[i + 1];
                            match esc {
                                b'r' => out.push(b'\r'),
                                b'n' => out.push(b'\n'),
                                b't' => out.push(b'\t'),
                                b'0' => out.push(0),
                                b'\\' => out.push(b'\\'),
                                b'"' => out.push(b'"'),
                                b'x' => {
                                    if i + 3 >= bytes.len() {
                                        return Err(ParseSpecError::BadEscape {
                                            pos: p,
                                            escape: "x".into(),
                                        });
                                    }
                                    let hex = &src[i + 2..i + 4];
                                    let v = u8::from_str_radix(hex, 16).map_err(|_| {
                                        ParseSpecError::BadEscape {
                                            pos: p,
                                            escape: format!("x{hex}"),
                                        }
                                    })?;
                                    out.push(v);
                                    advance!(2);
                                }
                                other => {
                                    return Err(ParseSpecError::BadEscape {
                                        pos: p,
                                        escape: (other as char).to_string(),
                                    })
                                }
                            }
                            advance!(2);
                        }
                        b => {
                            out.push(b);
                            advance!(1);
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(out), pos: p });
            }
            '0'..='9' => {
                let p = pos!();
                let start = i;
                if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X')
                {
                    advance!(2);
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        advance!(1);
                    }
                    let text = &src[start + 2..i];
                    let v = u64::from_str_radix(text, 16).map_err(|_| {
                        ParseSpecError::BadNumber { pos: p, text: src[start..i].to_string() }
                    })?;
                    tokens.push(Token { kind: TokenKind::Int(v), pos: p });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        advance!(1);
                    }
                    let text = &src[start..i];
                    let v: u64 = text.parse().map_err(|_| ParseSpecError::BadNumber {
                        pos: p,
                        text: text.to_string(),
                    })?;
                    tokens.push(Token { kind: TokenKind::Int(v), pos: p });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let p = pos!();
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    advance!(1);
                }
                tokens.push(Token { kind: TokenKind::Ident(src[start..i].to_string()), pos: p });
            }
            other => return Err(ParseSpecError::UnexpectedChar { pos: pos!(), found: other }),
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, pos: pos!() });
    Ok(tokens)
}

fn push_simple(tokens: &mut Vec<Token>, kind: TokenKind, pos: Pos, advance: impl FnOnce()) {
    advance();
    tokens.push(Token { kind, pos });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_punctuation_and_idents() {
        let ks = kinds("message M { u16 x; }");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("message".into()),
                TokenKind::Ident("M".into()),
                TokenKind::LBrace,
                TokenKind::Ident("u16".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("10 0x1F 0"),
            vec![TokenKind::Int(10), TokenKind::Int(0x1F), TokenKind::Int(0), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_strings_with_escapes() {
        let ks = kinds(r#""a\r\n" "\x00\xff" "sp ace""#);
        assert_eq!(ks[0], TokenKind::Str(b"a\r\n".to_vec()));
        assert_eq!(ks[1], TokenKind::Str(vec![0x00, 0xff]));
        assert_eq!(ks[2], TokenKind::Str(b"sp ace".to_vec()));
    }

    #[test]
    fn lex_comments() {
        let ks = kinds("a // comment\n b /* multi\nline */ c");
        assert_eq!(ks.len(), 4); // a b c eof
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("== = !="),
            vec![TokenKind::EqEq, TokenKind::Eq, TokenKind::NotEq, TokenKind::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(lex("\"abc"), Err(ParseSpecError::UnterminatedString { .. })));
        assert!(matches!(lex("\"\\q\""), Err(ParseSpecError::BadEscape { .. })));
        assert!(matches!(lex("#"), Err(ParseSpecError::UnexpectedChar { .. })));
        assert!(matches!(lex("!x"), Err(ParseSpecError::UnexpectedChar { .. })));
    }

    #[test]
    fn describe_is_informative() {
        assert!(TokenKind::Ident("x".into()).describe().contains('x'));
        assert!(TokenKind::Eof.describe().contains("end"));
    }
}

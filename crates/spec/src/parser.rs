//! Recursive-descent parser for the specification language (the paper used
//! Yacc).
//!
//! Grammar (EBNF):
//!
//! ```text
//! spec      := message+
//! message   := "message" IDENT "{" field* "}"
//! field     := terminal | seq | optional | repeat | tabular
//! terminal  := type IDENT [boundary] ["=" auto] ";"
//! type      := "u8".."u64" | "u16le" | "u32le" | "u64le"
//!            | "bytes" ["(" INT ")"] | "ascii"
//! boundary  := "until" STRING | "sized_by" ref | "rest"
//! auto      := ("len" | "count") "(" ref ")" | "const" lit
//! seq       := "seq" IDENT ["sized_by" ref | "rest"] "{" field* "}"
//! optional  := "optional" IDENT "if" cond "{" field* "}"
//! cond      := ref ("==" lit | "!=" lit | "in" "[" lit {"," lit} "]")
//! repeat    := "repeat" IDENT ("until" STRING | "rest") "{" field* "}"
//! tabular   := "tabular" IDENT "count_by" ref "{" field* "}"
//! ref       := IDENT {"." IDENT}
//! lit       := INT | STRING
//! ```

use protoobf_core::Endian;

use crate::ast::*;
use crate::error::{ParseSpecError, Pos};
use crate::token::{lex, Token, TokenKind};

/// Parses specification source text into an AST.
///
/// # Errors
///
/// Lexical and syntactic errors with source positions.
pub fn parse(src: &str) -> Result<SpecAst, ParseSpecError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, at: 0 };
    let mut messages = Vec::new();
    while !p.check_eof() {
        messages.push(p.message()?);
    }
    if messages.is_empty() {
        return Err(ParseSpecError::NoMessages);
    }
    Ok(SpecAst { messages })
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at]
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn check_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn unexpected(&self, expected: &str) -> ParseSpecError {
        ParseSpecError::Unexpected {
            pos: self.pos(),
            expected: expected.to_string(),
            found: self.peek().kind.describe(),
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseSpecError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseSpecError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// Consumes an identifier iff it matches `kw`.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseSpecError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {kw:?}")))
        }
    }

    fn string(&mut self, what: &str) -> Result<Vec<u8>, ParseSpecError> {
        match &self.peek().kind {
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn int(&mut self, what: &str) -> Result<u64, ParseSpecError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn reference(&mut self) -> Result<RefAst, ParseSpecError> {
        let pos = self.pos();
        let mut parts = vec![self.ident("field reference")?];
        while matches!(self.peek().kind, TokenKind::Dot) {
            self.bump();
            parts.push(self.ident("field reference segment")?);
        }
        Ok(RefAst { parts, pos })
    }

    fn message(&mut self) -> Result<MessageAst, ParseSpecError> {
        let pos = self.pos();
        self.expect_keyword("message")?;
        let name = self.ident("message name")?;
        let fields = self.block()?;
        Ok(MessageAst { name, fields, pos })
    }

    fn block(&mut self) -> Result<Vec<FieldAst>, ParseSpecError> {
        self.expect_kind(&TokenKind::LBrace, "'{'")?;
        let mut fields = Vec::new();
        while !matches!(self.peek().kind, TokenKind::RBrace) {
            if self.check_eof() {
                return Err(self.unexpected("'}'"));
            }
            fields.push(self.field()?);
        }
        self.bump(); // consume '}'
        Ok(fields)
    }

    fn field(&mut self) -> Result<FieldAst, ParseSpecError> {
        let pos = self.pos();
        let head = match &self.peek().kind {
            TokenKind::Ident(s) => s.clone(),
            _ => return Err(self.unexpected("a field declaration")),
        };
        match head.as_str() {
            "seq" => {
                self.bump();
                let name = self.ident("sequence name")?;
                let window = if self.eat_keyword("sized_by") {
                    Some(WindowAst::SizedBy(self.reference()?))
                } else if self.eat_keyword("rest") {
                    Some(WindowAst::Rest)
                } else {
                    None
                };
                let fields = self.block()?;
                Ok(FieldAst::Seq { name, window, fields, pos })
            }
            "optional" => {
                self.bump();
                let name = self.ident("optional name")?;
                self.expect_keyword("if")?;
                let cond = self.condition()?;
                let fields = self.block()?;
                Ok(FieldAst::Optional { name, cond, fields, pos })
            }
            "repeat" => {
                self.bump();
                let name = self.ident("repetition name")?;
                let stop = if self.eat_keyword("until") {
                    StopAst::Until(self.string("terminator string")?)
                } else if self.eat_keyword("rest") {
                    StopAst::Rest
                } else {
                    return Err(self.unexpected("'until \"…\"' or 'rest'"));
                };
                let fields = self.block()?;
                Ok(FieldAst::Repeat { name, stop, fields, pos })
            }
            "tabular" => {
                self.bump();
                let name = self.ident("tabular name")?;
                self.expect_keyword("count_by")?;
                let counter = self.reference()?;
                let fields = self.block()?;
                Ok(FieldAst::Tabular { name, counter, fields, pos })
            }
            _ => self.terminal(pos),
        }
    }

    fn terminal(&mut self, pos: Pos) -> Result<FieldAst, ParseSpecError> {
        let ty = self.type_ast()?;
        let name = self.ident("field name")?;
        let boundary = if self.eat_keyword("until") {
            Some(BoundaryAst::Until(self.string("delimiter string")?))
        } else if self.eat_keyword("sized_by") {
            Some(BoundaryAst::SizedBy(self.reference()?))
        } else if self.eat_keyword("rest") {
            Some(BoundaryAst::Rest)
        } else {
            None
        };
        let auto = if matches!(self.peek().kind, TokenKind::Eq) {
            self.bump();
            if self.eat_keyword("len") {
                self.expect_kind(&TokenKind::LParen, "'('")?;
                let r = self.reference()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                Some(AutoAst::Len(r))
            } else if self.eat_keyword("count") {
                self.expect_kind(&TokenKind::LParen, "'('")?;
                let r = self.reference()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                Some(AutoAst::Count(r))
            } else if self.eat_keyword("const") {
                Some(AutoAst::Const(self.literal()?))
            } else {
                return Err(self.unexpected("'len(…)', 'count(…)' or 'const <literal>'"));
            }
        } else {
            None
        };
        self.expect_kind(&TokenKind::Semi, "';'")?;
        Ok(FieldAst::Terminal { name, ty, boundary, auto, pos })
    }

    fn type_ast(&mut self) -> Result<TypeAst, ParseSpecError> {
        let name = self.ident("a type")?;
        let uint = |width, endian| Ok(TypeAst::UInt { width, endian });
        match name.as_str() {
            "u8" => uint(1, Endian::Big),
            "u16" | "u16be" => uint(2, Endian::Big),
            "u24" | "u24be" => uint(3, Endian::Big),
            "u32" | "u32be" => uint(4, Endian::Big),
            "u64" | "u64be" => uint(8, Endian::Big),
            "u16le" => uint(2, Endian::Little),
            "u24le" => uint(3, Endian::Little),
            "u32le" => uint(4, Endian::Little),
            "u64le" => uint(8, Endian::Little),
            "ascii" => Ok(TypeAst::Ascii),
            "bytes" => {
                if matches!(self.peek().kind, TokenKind::LParen) {
                    self.bump();
                    let n = self.int("byte count")? as usize;
                    self.expect_kind(&TokenKind::RParen, "')'")?;
                    Ok(TypeAst::Bytes(Some(n)))
                } else {
                    Ok(TypeAst::Bytes(None))
                }
            }
            other => Err(ParseSpecError::Unexpected {
                pos: self.tokens[self.at - 1].pos,
                expected: "a type (u8..u64, u16le…, bytes, ascii)".into(),
                found: format!("identifier {other:?}"),
            }),
        }
    }

    fn condition(&mut self) -> Result<CondAst, ParseSpecError> {
        let subject = self.reference()?;
        let (op, values) = match self.peek().kind {
            TokenKind::EqEq => {
                self.bump();
                (CondOp::Eq, vec![self.literal()?])
            }
            TokenKind::NotEq => {
                self.bump();
                (CondOp::Ne, vec![self.literal()?])
            }
            TokenKind::Ident(ref s) if s == "in" => {
                self.bump();
                self.expect_kind(&TokenKind::LBracket, "'['")?;
                let mut values = vec![self.literal()?];
                while matches!(self.peek().kind, TokenKind::Comma) {
                    self.bump();
                    values.push(self.literal()?);
                }
                self.expect_kind(&TokenKind::RBracket, "']'")?;
                (CondOp::In, values)
            }
            _ => return Err(self.unexpected("'==', '!=' or 'in'")),
        };
        Ok(CondAst { subject, op, values })
    }

    fn literal(&mut self) -> Result<LitAst, ParseSpecError> {
        match &self.peek().kind {
            TokenKind::Int(v) => {
                let v = *v;
                self.bump();
                Ok(LitAst::Int(v))
            }
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(LitAst::Str(s))
            }
            _ => Err(self.unexpected("an integer or string literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODBUS_MINI: &str = r#"
        // A Modbus-like message.
        message Modbus {
            u16 transaction_id;
            u16 protocol_id;
            u16 length = len(pdu);
            seq pdu {
                u8 unit_id;
                u8 function;
                optional read if function == 0x03 {
                    u16 start;
                    u16 quantity;
                }
            }
        }
    "#;

    #[test]
    fn parse_modbus_mini() {
        let ast = parse(MODBUS_MINI).unwrap();
        assert_eq!(ast.messages.len(), 1);
        let m = &ast.messages[0];
        assert_eq!(m.name, "Modbus");
        assert_eq!(m.fields.len(), 4);
        match &m.fields[2] {
            FieldAst::Terminal { name, auto: Some(AutoAst::Len(r)), .. } => {
                assert_eq!(name, "length");
                assert_eq!(r.text(), "pdu");
            }
            other => panic!("expected auto length, got {other:?}"),
        }
        match &m.fields[3] {
            FieldAst::Seq { fields, .. } => {
                assert!(matches!(&fields[2], FieldAst::Optional { .. }));
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn parse_all_terminal_forms() {
        let src = r#"
            message T {
                u8 a;
                u32le b;
                bytes(4) c;
                ascii d until " ";
                bytes e sized_by a;
                bytes f rest;
            }
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(ast.messages[0].fields.len(), 6);
        match &ast.messages[0].fields[3] {
            FieldAst::Terminal { boundary: Some(BoundaryAst::Until(d)), .. } => {
                assert_eq!(d, b" ");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_repeat_and_tabular() {
        let src = r#"
            message T {
                u8 n;
                tabular vals count_by n { u16 v; }
                repeat hdrs until "\r\n" {
                    ascii name until ": ";
                    ascii value until "\r\n";
                }
            }
        "#;
        let ast = parse(src).unwrap();
        match &ast.messages[0].fields[1] {
            FieldAst::Tabular { counter, fields, .. } => {
                assert_eq!(counter.text(), "n");
                assert_eq!(fields.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        match &ast.messages[0].fields[2] {
            FieldAst::Repeat { stop: StopAst::Until(t), fields, .. } => {
                assert_eq!(t, b"\r\n");
                assert_eq!(fields.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_in_condition() {
        let src = r#"
            message T {
                u8 f;
                optional body if f in [1, 2, 0x10] { u8 x; }
            }
        "#;
        let ast = parse(src).unwrap();
        match &ast.messages[0].fields[1] {
            FieldAst::Optional { cond, .. } => {
                assert_eq!(cond.op, CondOp::In);
                assert_eq!(cond.values.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_string_condition() {
        let src = r#"
            message T {
                ascii method until " ";
                optional body if method == "POST" { bytes b rest; }
            }
        "#;
        let ast = parse(src).unwrap();
        match &ast.messages[0].fields[1] {
            FieldAst::Optional { cond, .. } => {
                assert_eq!(cond.values, vec![LitAst::Str(b"POST".to_vec())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_multiple_messages() {
        let src = "message A { u8 x; } message B { u8 y; }";
        let ast = parse(src).unwrap();
        assert_eq!(ast.messages.len(), 2);
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = parse("message M { u16 ; }").unwrap_err();
        match err {
            ParseSpecError::Unexpected { pos, .. } => assert_eq!(pos.line, 1),
            other => panic!("{other:?}"),
        }
        assert!(parse("").is_err());
        assert!(parse("message M { bogus x; }").is_err());
        assert!(parse("message M { u8 x }").is_err());
        assert!(parse("message M { repeat r { u8 x; } }").is_err());
    }

    #[test]
    fn dotted_references() {
        let src = r#"
            message T {
                seq head { u8 n; }
                bytes data sized_by head.n;
            }
        "#;
        let ast = parse(src).unwrap();
        match &ast.messages[0].fields[1] {
            FieldAst::Terminal { boundary: Some(BoundaryAst::SizedBy(r)), .. } => {
                assert_eq!(r.parts, vec!["head".to_string(), "n".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }
}

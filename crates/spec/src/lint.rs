//! Specification linting: heuristic checks over a validated
//! [`FormatGraph`] (and a derived codec) for the structural traps that
//! pass validation but bite at runtime.
//!
//! Where [`protoobf_core::verify`] proves hard invariants of the compiled
//! IR (its `P...` codes are errors), this module flags *suspect
//! specifications* — constructs that are legal but ambiguous or
//! degenerate. `L...` codes are warnings: `protoobf lint` reports them
//! with exit 0 unless `--deny-warnings` is given.
//!
//! | code | meaning |
//! |------|---------|
//! | `L001` | an optional branch is statically decided (predicate can never — or always — match) |
//! | `L002` | a repetition's element content can alias its terminator (the DNS label/terminator class) |
//! | `L003` | the message type has zero covert-carrier capacity (a tunnel would carry nothing) |
//! | `L004` | the obfuscation configuration degenerates at the requested level |

use std::fmt;

use protoobf_core::graph::{AutoValue, NodeType, Predicate, StopRule};
use protoobf_core::profile::ObfConfig;
use protoobf_core::value::TerminalKind;
use protoobf_core::{ChannelMap, Codec, FormatGraph, Value};

/// One lint finding: a stable warning code plus a human-readable detail
/// naming the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable machine-readable code (`L001`...). See the module docs.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.message)
    }
}

/// `L001` — an optional branch whose predicate is statically decided.
pub const UNREACHABLE_OPTIONAL: &str = "L001";
/// `L002` — element content can alias a repetition terminator.
pub const TERMINATOR_ALIASING: &str = "L002";
/// `L003` — zero covert-carrier capacity.
pub const ZERO_CARRIER_CAPACITY: &str = "L003";
/// `L004` — degenerate transform configuration for the requested level.
pub const DEGENERATE_TRANSFORMS: &str = "L004";

fn lint(code: &'static str, message: String) -> Lint {
    Lint { code, message }
}

/// Lints one plain specification graph. Purely structural — no codec or
/// obfuscation configuration needed.
pub fn lint_graph(g: &FormatGraph) -> Vec<Lint> {
    let mut out = Vec::new();
    for id in g.preorder() {
        let node = g.node(id);
        match node.node_type() {
            NodeType::Optional(cond) => {
                let subject = g.node(cond.subject);
                if let Some(verdict) =
                    static_verdict(&cond.predicate, subject.auto(), subject.node_type())
                {
                    out.push(lint(
                        UNREACHABLE_OPTIONAL,
                        format!(
                            "optional {:?}: predicate on {:?} is statically {} — the branch is {}",
                            node.name(),
                            subject.name(),
                            verdict,
                            if verdict { "always present" } else { "unreachable" },
                        ),
                    ));
                }
            }
            NodeType::Repetition(StopRule::Terminator(t)) => {
                out.extend(terminator_aliasing(g, id, node.name(), t));
            }
            _ => {}
        }
    }
    out
}

/// Statically evaluates an optional's predicate where possible: `Some(b)`
/// when the branch is decided at specification time.
fn static_verdict(
    pred: &Predicate,
    subject_auto: &AutoValue,
    subject_type: &NodeType,
) -> Option<bool> {
    // A constant subject decides the predicate outright.
    if let AutoValue::Literal(v) = subject_auto {
        return Some(pred.eval(v));
    }
    // An empty candidate set can never match.
    if let Predicate::OneOf(vs) = pred {
        if vs.is_empty() {
            return Some(false);
        }
    }
    // Fixed-width integer subjects compare by exact byte string: a
    // candidate of the wrong width can never equal the recovered value.
    if let NodeType::Terminal(TerminalKind::UInt { width, .. }) = subject_type {
        let fits = |v: &Value| v.len() == *width;
        return match pred {
            Predicate::Equals(v) if !fits(v) => Some(false),
            Predicate::NotEquals(v) if !fits(v) => Some(true),
            Predicate::OneOf(vs) if !vs.iter().any(fits) => Some(false),
            _ => None,
        };
    }
    None
}

/// The DNS label/terminator class of ambiguity: a repetition stops when
/// its terminator appears at the start of the remaining input, so any
/// element whose *first wire bytes* can equal the terminator parses as
/// end-of-list instead. Flags the three ways a specification can produce
/// such bytes.
fn terminator_aliasing(
    g: &FormatGraph,
    rep: protoobf_core::NodeId,
    rep_name: &str,
    term: &[u8],
) -> Vec<Lint> {
    let mut out = Vec::new();
    // First wire terminal of the element (the bytes a parser compares
    // against the terminator).
    let Some(first) = g.subtree(rep).into_iter().find(|&x| x != rep && g.node(x).is_terminal())
    else {
        return out;
    };
    let f = g.node(first);
    let aliases = |detail: String| {
        lint(
            TERMINATOR_ALIASING,
            format!("repetition {rep_name:?} (terminator {term:02x?}): {detail}"),
        )
    };
    match (f.auto(), f.node_type()) {
        // Length/count prefix: a zero value emits zero bytes — if the
        // terminator is that zero prefix, an empty element *is* the
        // terminator (DNS forbids zero-length labels for exactly this
        // reason).
        (
            AutoValue::LengthOf(_) | AutoValue::CounterOf(_),
            NodeType::Terminal(TerminalKind::UInt { width, .. }),
        ) if term.len() <= *width && term.iter().all(|&b| b == 0) => {
            out.push(aliases(format!(
                "an element whose {:?} prefix encodes zero is indistinguishable from the \
                 terminator — forbid empty elements or change the terminator",
                f.name(),
            )));
        }
        // Constant first field sharing a prefix with the terminator:
        // every element (or none) aliases.
        (AutoValue::Literal(v), _) => {
            let b = v.as_bytes();
            if b.starts_with(term) || term.starts_with(b) {
                out.push(aliases(format!(
                    "constant first field {:?} ({:02x?}) shares a prefix with the terminator",
                    f.name(),
                    b,
                )));
            }
        }
        // Free application content in first position: nothing stops a
        // value from beginning with the terminator bytes.
        (AutoValue::None, NodeType::Terminal(TerminalKind::Bytes | TerminalKind::Ascii)) => {
            out.push(aliases(format!(
                "application-controlled first field {:?} may begin with the terminator bytes \
                 — such an element parses as end-of-list",
                f.name(),
            )));
        }
        _ => {}
    }
    out
}

/// Lints a derived codec against the obfuscation configuration that
/// produced it: covert-carrier capacity and transform degeneracy.
pub fn lint_codec(codec: &Codec, obf: &ObfConfig) -> Vec<Lint> {
    let mut out = Vec::new();
    if ChannelMap::analyze(codec).is_empty() {
        out.push(lint(
            ZERO_CARRIER_CAPACITY,
            format!(
                "{:?} has no covert-carrier fields — a tunnel over this codec would carry \
                 no payload",
                codec.plain().name(),
            ),
        ));
    }
    if obf.level > 0 {
        if obf.allowed.is_empty() {
            out.push(lint(
                DEGENERATE_TRANSFORMS,
                format!(
                    "level {} requested with an empty transform allow-list — the derivation \
                     degenerates to the identity codec",
                    obf.level,
                ),
            ));
        } else if codec.transform_count() == 0 {
            out.push(lint(
                DEGENERATE_TRANSFORMS,
                format!(
                    "level {} requested but the derivation applied no transformations — \
                     traffic is emitted in the clear",
                    obf.level,
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_spec;

    fn codes(lints: &[Lint]) -> Vec<&'static str> {
        lints.iter().map(|l| l.code).collect()
    }

    #[test]
    fn clean_spec_lints_clean() {
        let g = parse_spec(
            r#"
            message Clean {
                u8 function;
                u16 length = len(payload);
                bytes payload sized_by length;
                optional extra if function == 0x01 {
                    u16 value;
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(lint_graph(&g), vec![]);
    }

    #[test]
    fn l001_constant_subject_fires() {
        let g = parse_spec(
            r#"
            message M {
                u8 version = const 2;
                optional legacy if version == 1 {
                    u16 pad;
                }
            }
            "#,
        )
        .unwrap();
        let l = lint_graph(&g);
        assert!(codes(&l).contains(&UNREACHABLE_OPTIONAL), "{l:?}");
        assert!(l[0].message.contains("unreachable"), "{l:?}");
    }

    #[test]
    fn l001_always_present_fires() {
        let g = parse_spec(
            r#"
            message M {
                u8 version = const 2;
                optional body if version != 1 {
                    u16 v;
                }
            }
            "#,
        )
        .unwrap();
        let l = lint_graph(&g);
        assert!(codes(&l).contains(&UNREACHABLE_OPTIONAL), "{l:?}");
        assert!(l[0].message.contains("always present"), "{l:?}");
    }

    #[test]
    fn l002_zero_length_prefix_alias_fires() {
        // The DNS shape: label length prefix + zero terminator.
        let g = parse_spec(
            r#"
            message M {
                repeat name until "\x00" {
                    u8 label_len = len(label);
                    bytes label sized_by label_len;
                }
            }
            "#,
        )
        .unwrap();
        let l = lint_graph(&g);
        assert!(codes(&l).contains(&TERMINATOR_ALIASING), "{l:?}");
    }

    #[test]
    fn l002_free_content_alias_fires() {
        let g = parse_spec(
            r#"
            message M {
                repeat items until "\r\n" {
                    ascii word until " ";
                }
            }
            "#,
        )
        .unwrap();
        let l = lint_graph(&g);
        assert!(codes(&l).contains(&TERMINATOR_ALIASING), "{l:?}");
    }

    #[test]
    fn l002_distinct_constant_prefix_is_clean() {
        let g = parse_spec(
            r#"
            message M {
                repeat records until "\xff" {
                    u8 tag = const 1;
                    u8 value;
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(lint_graph(&g), vec![], "tag 0x01 cannot alias terminator 0xff");
    }

    #[test]
    fn l003_zero_capacity_fires() {
        let g = parse_spec(
            r#"
            message M {
                u16 id;
                u16 flags;
            }
            "#,
        )
        .unwrap();
        let codec = Codec::identity(&g);
        let l = lint_codec(&codec, &ObfConfig::default());
        assert!(codes(&l).contains(&ZERO_CARRIER_CAPACITY), "{l:?}");
    }

    #[test]
    fn l004_degenerate_config_fires() {
        let g = parse_spec(
            r#"
            message M {
                u16 length = len(data);
                bytes data sized_by length;
            }
            "#,
        )
        .unwrap();
        // Identity codec at a non-zero requested level: no transformations
        // were applied.
        let codec = Codec::identity(&g);
        let cfg = ObfConfig { key: b"k".to_vec(), level: 2, ..ObfConfig::default() };
        let l = lint_codec(&codec, &cfg);
        assert!(codes(&l).contains(&DEGENERATE_TRANSFORMS), "{l:?}");
        // An empty allow-list at level > 0 also fires.
        let cfg = ObfConfig { key: Vec::new(), level: 1, allowed: Vec::new() };
        let l = lint_codec(&codec, &cfg);
        assert!(codes(&l).contains(&DEGENERATE_TRANSFORMS), "{l:?}");
        // Level 0 is deliberate cleartext: no warning.
        let cfg = ObfConfig { key: Vec::new(), level: 0, allowed: Vec::new() };
        assert!(!codes(&lint_codec(&codec, &cfg)).contains(&DEGENERATE_TRANSFORMS));
    }

    #[test]
    fn dns_builtin_shape_warns_but_only_l002() {
        // The real DNS specs retain the label/terminator ambiguity by
        // protocol convention ("a label length can never be zero") — the
        // linter must flag it as a warning and nothing else.
        let g = parse_spec(
            r#"
            message DnsLike {
                u16 id;
                u16 qdcount = count(questions);
                tabular questions count_by qdcount {
                    repeat qname until "\x00" {
                        u8 label_len = len(label);
                        bytes label sized_by label_len;
                    }
                    u16 qtype;
                }
            }
            "#,
        )
        .unwrap();
        let l = lint_graph(&g);
        assert!(!l.is_empty());
        assert!(l.iter().all(|x| x.code == TERMINATOR_ALIASING), "{l:?}");
    }
}

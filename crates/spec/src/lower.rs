//! Lowering: specification AST → validated [`FormatGraph`].
//!
//! Boundary, counter and condition references resolve against fields
//! declared *earlier* (the backward-reference rule the parser will rely
//! on); auto-computation targets (`= len(x)`, `= count(x)`) may point
//! forward and are patched in after the whole tree is built.

use std::collections::HashMap;

use protoobf_core::graph::{
    AutoValue, Boundary, Condition, FormatGraph, GraphBuilder, NodeId, Predicate, StopRule,
};
use protoobf_core::{TerminalKind, Value};

use crate::ast::*;
use crate::error::{ParseSpecError, Pos};

/// Lowers one message declaration to a validated format graph.
///
/// # Errors
///
/// Unresolved/ambiguous references, inconsistent declarations, or graph
/// validation failures.
pub fn lower(message: &MessageAst) -> Result<FormatGraph, ParseSpecError> {
    let mut lw = Lowerer {
        builder: GraphBuilder::new(message.name.clone()),
        by_path: HashMap::new(),
        by_name: HashMap::new(),
        pending_autos: Vec::new(),
        kinds: HashMap::new(),
    };
    let root = lw.builder.root_sequence(message.name.clone(), Boundary::End);
    lw.add_fields(root, "", &message.fields)?;
    let pending = std::mem::take(&mut lw.pending_autos);
    for (field, auto, pos) in pending {
        let av = match &auto {
            AutoAst::Len(r) => AutoValue::LengthOf(lw.resolve(r)?),
            AutoAst::Count(r) => AutoValue::CounterOf(lw.resolve(r)?),
            AutoAst::Const(lit) => AutoValue::Literal(lw.encode_literal(field, lit, pos)?),
        };
        lw.builder.set_auto(field, av);
    }
    Ok(lw.builder.build()?)
}

struct Lowerer {
    builder: GraphBuilder,
    by_path: HashMap<String, NodeId>,
    by_name: HashMap<String, Vec<NodeId>>,
    pending_autos: Vec<(NodeId, AutoAst, Pos)>,
    /// Terminal kinds recorded during construction, for condition-literal
    /// encoding (the builder does not expose nodes before `build()`).
    kinds: HashMap<NodeId, TerminalKind>,
}

impl Lowerer {
    fn register(&mut self, prefix: &str, name: &str, id: NodeId) -> String {
        let path = if prefix.is_empty() { name.to_string() } else { format!("{prefix}.{name}") };
        self.by_path.insert(path.clone(), id);
        self.by_name.entry(name.to_string()).or_default().push(id);
        path
    }

    fn resolve(&self, r: &RefAst) -> Result<NodeId, ParseSpecError> {
        if r.parts.len() > 1 {
            return self
                .by_path
                .get(&r.text())
                .copied()
                .ok_or_else(|| ParseSpecError::UnknownReference { pos: r.pos, name: r.text() });
        }
        match self.by_name.get(&r.parts[0]).map(Vec::as_slice) {
            Some([one]) => Ok(*one),
            Some([]) | None => Err(ParseSpecError::UnknownReference { pos: r.pos, name: r.text() }),
            Some(_) => Err(ParseSpecError::AmbiguousReference { pos: r.pos, name: r.text() }),
        }
    }

    fn add_fields(
        &mut self,
        parent: NodeId,
        prefix: &str,
        fields: &[FieldAst],
    ) -> Result<(), ParseSpecError> {
        for f in fields {
            self.add_field(parent, prefix, f)?;
        }
        Ok(())
    }

    fn add_field(
        &mut self,
        parent: NodeId,
        prefix: &str,
        field: &FieldAst,
    ) -> Result<NodeId, ParseSpecError> {
        match field {
            FieldAst::Terminal { name, ty, boundary, auto, pos } => {
                let (kind, bnd) = self.terminal_parts(ty, boundary.as_ref(), *pos)?;
                let id = self.builder.terminal(parent, name.clone(), kind.clone(), bnd);
                self.kinds.insert(id, kind);
                self.register(prefix, name, id);
                if let Some(a) = auto {
                    self.pending_autos.push((id, a.clone(), *pos));
                }
                Ok(id)
            }
            FieldAst::Seq { name, window, fields, pos: _ } => {
                let bnd = match window {
                    None => Boundary::Delegated,
                    Some(WindowAst::Rest) => Boundary::End,
                    Some(WindowAst::SizedBy(r)) => Boundary::Length(self.resolve(r)?),
                };
                let id = self.builder.sequence(parent, name.clone(), bnd);
                let path = self.register(prefix, name, id);
                self.add_fields(id, &path, fields)?;
                Ok(id)
            }
            FieldAst::Optional { name, cond, fields, pos } => {
                let subject = self.resolve(&cond.subject)?;
                let condition = self.condition(subject, cond, *pos)?;
                let id = self.builder.optional(parent, name.clone(), condition);
                let path = self.register(prefix, name, id);
                self.add_element(id, &path, name, fields, *pos, true)?;
                Ok(id)
            }
            FieldAst::Repeat { name, stop, fields, pos } => {
                let (stop_rule, bnd) = match stop {
                    StopAst::Until(t) => (StopRule::Terminator(t.clone()), Boundary::Delegated),
                    StopAst::Rest => (StopRule::Exhausted, Boundary::End),
                };
                let id = self.builder.repetition(parent, name.clone(), stop_rule, bnd);
                let path = self.register(prefix, name, id);
                self.add_element(id, &path, name, fields, *pos, false)?;
                Ok(id)
            }
            FieldAst::Tabular { name, counter, fields, pos } => {
                let c = self.resolve(counter)?;
                let id = self.builder.tabular(parent, name.clone(), c);
                let path = self.register(prefix, name, id);
                self.add_element(id, &path, name, fields, *pos, false)?;
                Ok(id)
            }
        }
    }

    /// Adds the body of a wrapper node: a single declared field becomes the
    /// child directly; several fields are wrapped in an implicit sequence
    /// (named `body` for optionals, `item` for repetitions/tabulars).
    fn add_element(
        &mut self,
        wrapper: NodeId,
        path: &str,
        name: &str,
        fields: &[FieldAst],
        pos: Pos,
        optional: bool,
    ) -> Result<(), ParseSpecError> {
        match fields {
            [] => Err(ParseSpecError::BadDeclaration {
                pos,
                reason: format!("{name:?} must declare at least one field"),
            }),
            [single] => {
                self.add_field(wrapper, path, single)?;
                Ok(())
            }
            many => {
                let elem_name = if optional { "body" } else { "item" };
                let elem =
                    self.builder.sequence(wrapper, elem_name.to_string(), Boundary::Delegated);
                let elem_path = self.register(path, elem_name, elem);
                self.add_fields(elem, &elem_path, many)?;
                Ok(())
            }
        }
    }

    fn terminal_parts(
        &self,
        ty: &TypeAst,
        boundary: Option<&BoundaryAst>,
        pos: Pos,
    ) -> Result<(TerminalKind, Boundary), ParseSpecError> {
        match ty {
            TypeAst::UInt { width, endian } => {
                if boundary.is_some() {
                    return Err(ParseSpecError::BadDeclaration {
                        pos,
                        reason: "sized integers cannot carry boundary annotations".into(),
                    });
                }
                Ok((TerminalKind::UInt { width: *width, endian: *endian }, Boundary::Fixed(*width)))
            }
            TypeAst::Bytes(Some(n)) => {
                if boundary.is_some() {
                    return Err(ParseSpecError::BadDeclaration {
                        pos,
                        reason: "fixed-size bytes cannot carry boundary annotations".into(),
                    });
                }
                Ok((TerminalKind::Bytes, Boundary::Fixed(*n)))
            }
            TypeAst::Bytes(None) | TypeAst::Ascii => {
                let kind = if matches!(ty, TypeAst::Ascii) {
                    TerminalKind::Ascii
                } else {
                    TerminalKind::Bytes
                };
                let bnd = match boundary {
                    Some(BoundaryAst::Until(d)) => Boundary::Delimited(d.clone()),
                    Some(BoundaryAst::SizedBy(r)) => Boundary::Length(self.resolve(r)?),
                    Some(BoundaryAst::Rest) => Boundary::End,
                    None => {
                        return Err(ParseSpecError::BadDeclaration {
                            pos,
                            reason: "variable-size fields need 'until', 'sized_by' or 'rest'"
                                .into(),
                        })
                    }
                };
                Ok((kind, bnd))
            }
        }
    }

    fn condition(
        &self,
        subject: NodeId,
        cond: &CondAst,
        pos: Pos,
    ) -> Result<Condition, ParseSpecError> {
        let values: Vec<Value> = cond
            .values
            .iter()
            .map(|lit| self.encode_literal(subject, lit, pos))
            .collect::<Result<_, _>>()?;
        let predicate = match cond.op {
            CondOp::Eq => Predicate::Equals(values.into_iter().next().expect("one literal")),
            CondOp::Ne => Predicate::NotEquals(values.into_iter().next().expect("one literal")),
            CondOp::In => Predicate::OneOf(values),
        };
        Ok(Condition { subject, predicate })
    }

    fn encode_literal(
        &self,
        subject: NodeId,
        lit: &LitAst,
        pos: Pos,
    ) -> Result<Value, ParseSpecError> {
        // Look up the subject's declared terminal kind in the builder's
        // current state: re-derive from what we inserted.
        let kind = self.subject_kind(subject).ok_or_else(|| ParseSpecError::BadDeclaration {
            pos,
            reason: "condition subject must be a terminal field".into(),
        })?;
        match (lit, &kind) {
            (LitAst::Int(v), TerminalKind::UInt { width, endian }) => {
                Value::from_uint(*v, *width, *endian).ok_or_else(|| {
                    ParseSpecError::BadDeclaration {
                        pos,
                        reason: format!("literal {v} does not fit in {width} byte(s)"),
                    }
                })
            }
            (LitAst::Int(v), _) => Err(ParseSpecError::BadDeclaration {
                pos,
                reason: format!("integer literal {v} used on a non-numeric subject"),
            }),
            (LitAst::Str(s), TerminalKind::UInt { .. }) => Err(ParseSpecError::BadDeclaration {
                pos,
                reason: format!(
                    "string literal {:?} used on a numeric subject",
                    String::from_utf8_lossy(s)
                ),
            }),
            (LitAst::Str(s), _) => Ok(Value::from_bytes(s.clone())),
        }
    }

    fn subject_kind(&self, subject: NodeId) -> Option<TerminalKind> {
        self.kinds.get(&subject).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Result<FormatGraph, ParseSpecError> {
        let ast = parse(src)?;
        lower(&ast.messages[0])
    }

    #[test]
    fn lower_modbus_like() {
        let g = lower_src(
            r#"
            message Modbus {
                u16 transaction_id;
                u16 length = len(pdu);
                seq pdu {
                    u8 function;
                    optional read if function == 3 {
                        u16 start;
                        u16 quantity;
                    }
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(g.name(), "Modbus");
        let len = g.resolve_names(&["length"]).unwrap();
        let pdu = g.resolve_names(&["pdu"]).unwrap();
        assert_eq!(g.node(len).auto(), &AutoValue::LengthOf(pdu));
        assert!(g.resolve_names(&["pdu", "read", "start"]).is_some());
    }

    #[test]
    fn unknown_reference_reported() {
        let err = lower_src("message M { bytes d sized_by nope; }").unwrap_err();
        assert!(matches!(err, ParseSpecError::UnknownReference { .. }));
    }

    #[test]
    fn ambiguous_reference_reported() {
        let err = lower_src(
            r#"
            message M {
                seq a { u8 n; }
                seq b { u8 n; }
                bytes d sized_by n;
            }
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, ParseSpecError::AmbiguousReference { .. }));
    }

    #[test]
    fn dotted_reference_resolves() {
        let g = lower_src(
            r#"
            message M {
                seq a { u8 n; }
                seq b { u8 n; }
                bytes d sized_by a.n;
            }
            "#,
        )
        .unwrap();
        let d = g.resolve_names(&["d"]).unwrap();
        let an = g.resolve_names(&["a", "n"]).unwrap();
        assert_eq!(g.node(d).boundary(), &Boundary::Length(an));
    }

    #[test]
    fn boundary_on_sized_int_rejected() {
        let err = lower_src("message M { u16 x rest; }").unwrap_err();
        assert!(matches!(err, ParseSpecError::BadDeclaration { .. }));
    }

    #[test]
    fn variable_bytes_need_boundary() {
        let err = lower_src("message M { bytes x; }").unwrap_err();
        assert!(matches!(err, ParseSpecError::BadDeclaration { .. }));
    }

    #[test]
    fn string_condition_on_numeric_rejected() {
        let err = lower_src(r#"message M { u8 f; optional b if f == "x" { u8 y; } }"#).unwrap_err();
        assert!(matches!(err, ParseSpecError::BadDeclaration { .. }));
    }

    #[test]
    fn single_field_elements_skip_wrapper() {
        let g = lower_src(
            r#"
            message M {
                u8 n;
                tabular vals count_by n { u16 v; }
            }
            "#,
        )
        .unwrap();
        let tab = g.resolve_names(&["vals"]).unwrap();
        let child = g.node(tab).children()[0];
        assert_eq!(g.node(child).name(), "v");
    }

    #[test]
    fn multi_field_elements_get_item_wrapper() {
        let g = lower_src(
            r#"
            message M {
                u8 n;
                tabular vals count_by n { u16 a; u16 b; }
            }
            "#,
        )
        .unwrap();
        let tab = g.resolve_names(&["vals"]).unwrap();
        let child = g.node(tab).children()[0];
        assert_eq!(g.node(child).name(), "item");
        assert_eq!(g.node(child).children().len(), 2);
    }

    #[test]
    fn forward_auto_reference_allowed() {
        let g = lower_src(
            r#"
            message M {
                u8 count = count(vals);
                tabular vals count_by count { u16 v; }
            }
            "#,
        )
        .unwrap();
        let c = g.resolve_names(&["count"]).unwrap();
        let vals = g.resolve_names(&["vals"]).unwrap();
        assert_eq!(g.node(c).auto(), &AutoValue::CounterOf(vals));
    }

    #[test]
    fn in_condition_lowered_to_oneof() {
        let g = lower_src(
            r#"
            message M {
                u8 f;
                optional b if f in [1, 2] { u8 x; }
            }
            "#,
        )
        .unwrap();
        let b = g.resolve_names(&["b"]).unwrap();
        match g.node(b).node_type() {
            protoobf_core::graph::NodeType::Optional(c) => {
                assert!(matches!(c.predicate, Predicate::OneOf(ref v) if v.len() == 2));
            }
            other => panic!("{other:?}"),
        }
    }
}

#[cfg(test)]
mod const_tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Result<FormatGraph, ParseSpecError> {
        let ast = parse(src)?;
        lower(&ast.messages[0])
    }

    #[test]
    fn const_int_on_uint_field() {
        let g = lower_src("message M { u16 magic = const 0xABCD; u8 x; }").unwrap();
        let magic = g.resolve_names(&["magic"]).unwrap();
        match g.node(magic).auto() {
            AutoValue::Literal(v) => assert_eq!(v.as_bytes(), &[0xAB, 0xCD]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn const_str_on_ascii_field() {
        let g = lower_src(r#"message M { ascii version until " " = const "HTTP/1.1"; u8 x; }"#)
            .unwrap();
        let v = g.resolve_names(&["version"]).unwrap();
        match g.node(v).auto() {
            AutoValue::Literal(val) => assert_eq!(val.as_bytes(), b"HTTP/1.1"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn const_str_on_uint_rejected() {
        let err = lower_src(r#"message M { u16 magic = const "xy"; u8 x; }"#).unwrap_err();
        assert!(matches!(err, ParseSpecError::BadDeclaration { .. }));
    }

    #[test]
    fn const_int_overflow_rejected() {
        let err = lower_src("message M { u8 magic = const 300; u8 x; }").unwrap_err();
        assert!(matches!(err, ParseSpecError::BadDeclaration { .. }));
    }

    #[test]
    fn const_wrong_width_rejected_by_validation() {
        let err = lower_src(r#"message M { bytes(4) magic = const "ab"; u8 x; }"#).unwrap_err();
        assert!(matches!(err, ParseSpecError::Invalid(_)), "{err:?}");
    }

    #[test]
    fn const_fields_print_and_reparse() {
        let g = lower_src(
            r#"message M { u16 magic = const 0x1234; ascii v until " " = const "one"; u8 x; }"#,
        )
        .unwrap();
        let text = crate::print::to_text(&g);
        let g2 = lower_src(&text).unwrap();
        assert_eq!(crate::print::to_text(&g2), text);
    }
}

//! Pretty-printer: [`FormatGraph`] → specification text.
//!
//! Useful for documenting generated graphs and for print→parse round-trip
//! tests of the DSL itself.

use protoobf_core::graph::{
    AutoValue, Boundary, FormatGraph, NodeId, NodeType, Predicate, StopRule,
};
use protoobf_core::{Endian, TerminalKind};

/// Renders a format graph back to specification text.
pub fn to_text(g: &FormatGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("message {} {{\n", g.name()));
    for &c in g.node(g.root()).children() {
        print_node(g, c, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn path_of(g: &FormatGraph, id: NodeId) -> String {
    let mut parts = vec![g.node(id).name().to_string()];
    let mut cur = g.node(id).parent();
    while let Some(p) = cur {
        if g.node(p).parent().is_none() {
            break; // skip the root name
        }
        parts.push(g.node(p).name().to_string());
        cur = g.node(p).parent();
    }
    parts.reverse();
    parts.join(".")
}

fn escape(bytes: &[u8]) -> String {
    let mut s = String::from("\"");
    for &b in bytes {
        match b {
            b'\r' => s.push_str("\\r"),
            b'\n' => s.push_str("\\n"),
            b'\t' => s.push_str("\\t"),
            0 => s.push_str("\\0"),
            b'"' => s.push_str("\\\""),
            b'\\' => s.push_str("\\\\"),
            b if (0x20..0x7f).contains(&b) => s.push(b as char),
            b => s.push_str(&format!("\\x{b:02x}")),
        }
    }
    s.push('"');
    s
}

fn print_node(g: &FormatGraph, id: NodeId, level: usize, out: &mut String) {
    let node = g.node(id);
    indent(level, out);
    match node.node_type() {
        NodeType::Terminal(kind) => {
            let ty = match kind {
                TerminalKind::UInt { width, endian } => {
                    let suffix = if *endian == Endian::Little { "le" } else { "" };
                    format!("u{}{}", width * 8, suffix)
                }
                TerminalKind::Bytes => match node.boundary() {
                    Boundary::Fixed(n) => format!("bytes({n})"),
                    _ => "bytes".to_string(),
                },
                TerminalKind::Ascii => "ascii".to_string(),
            };
            out.push_str(&format!("{ty} {}", node.name()));
            match node.boundary() {
                Boundary::Fixed(_) => {}
                Boundary::Delimited(d) => out.push_str(&format!(" until {}", escape(d))),
                Boundary::Length(r) => out.push_str(&format!(" sized_by {}", path_of(g, *r))),
                Boundary::End => out.push_str(" rest"),
                Boundary::Counter(_) | Boundary::Delegated => {}
            }
            match node.auto() {
                AutoValue::None => {}
                AutoValue::LengthOf(t) => out.push_str(&format!(" = len({})", path_of(g, *t))),
                AutoValue::CounterOf(t) => out.push_str(&format!(" = count({})", path_of(g, *t))),
                AutoValue::Literal(v) => match kind {
                    TerminalKind::UInt { endian, .. } => {
                        out.push_str(&format!(
                            " = const 0x{:02x}",
                            v.to_uint(*endian).unwrap_or(0)
                        ));
                    }
                    _ => out.push_str(&format!(" = const {}", escape(v.as_bytes()))),
                },
            }
            out.push_str(";\n");
        }
        NodeType::Sequence => {
            out.push_str(&format!("seq {}", node.name()));
            match node.boundary() {
                Boundary::Length(r) => out.push_str(&format!(" sized_by {}", path_of(g, *r))),
                Boundary::End => out.push_str(" rest"),
                _ => {}
            }
            out.push_str(" {\n");
            for &c in node.children() {
                print_node(g, c, level + 1, out);
            }
            indent(level, out);
            out.push_str("}\n");
        }
        NodeType::Optional(cond) => {
            out.push_str(&format!("optional {} if {} ", node.name(), path_of(g, cond.subject)));
            match &cond.predicate {
                Predicate::Equals(v) => {
                    out.push_str(&format!("== {}", render_value(g, cond.subject, v)))
                }
                Predicate::NotEquals(v) => {
                    out.push_str(&format!("!= {}", render_value(g, cond.subject, v)))
                }
                Predicate::OneOf(vs) => {
                    out.push_str("in [");
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&render_value(g, cond.subject, v));
                    }
                    out.push(']');
                }
            }
            out.push_str(" {\n");
            print_body(g, id, level, out);
        }
        NodeType::Repetition(stop) => {
            out.push_str(&format!("repeat {}", node.name()));
            match stop {
                StopRule::Terminator(t) => out.push_str(&format!(" until {}", escape(t))),
                StopRule::Exhausted => out.push_str(" rest"),
            }
            out.push_str(" {\n");
            print_body(g, id, level, out);
        }
        NodeType::Tabular => {
            let counter = match node.boundary() {
                Boundary::Counter(c) => path_of(g, *c),
                _ => String::from("?"),
            };
            out.push_str(&format!("tabular {} count_by {counter} {{\n", node.name()));
            print_body(g, id, level, out);
        }
    }
}

/// Prints the body of a wrapper node, flattening the implicit
/// `body`/`item` sequence the lowering inserts.
fn print_body(g: &FormatGraph, id: NodeId, level: usize, out: &mut String) {
    let child = g.node(id).children()[0];
    let cnode = g.node(child);
    let implicit = matches!(cnode.node_type(), NodeType::Sequence)
        && matches!(cnode.boundary(), Boundary::Delegated)
        && (cnode.name() == "item" || cnode.name() == "body");
    if implicit {
        for &c in cnode.children() {
            print_node(g, c, level + 1, out);
        }
    } else {
        print_node(g, child, level + 1, out);
    }
    indent(level, out);
    out.push_str("}\n");
}

fn render_value(g: &FormatGraph, subject: NodeId, v: &protoobf_core::Value) -> String {
    match g.node(subject).terminal_kind() {
        Some(TerminalKind::UInt { endian, .. }) => {
            format!("0x{:02x}", v.to_uint(*endian).unwrap_or(0))
        }
        _ => escape(v.as_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"message M {
    u16 transaction_id;
    u16 length = len(pdu);
    seq pdu {
        u8 function;
        optional read if function == 0x03 {
            u16 start;
            u16 quantity;
        }
        ascii uri until " ";
        bytes data sized_by length;
        u8 n = count(vals);
        tabular vals count_by n {
            u16 a;
            u16 b;
        }
        repeat hdrs until "\r\n" {
            ascii k until ": ";
            ascii v until "\r\n";
        }
        bytes tail rest;
    }
}
"#;

    #[test]
    fn print_parse_fixpoint() {
        let ast1 = parse(SRC).unwrap();
        let g1 = crate::lower::lower(&ast1.messages[0]).unwrap();
        let text1 = to_text(&g1);
        let ast2 = parse(&text1).unwrap();
        let g2 = crate::lower::lower(&ast2.messages[0]).unwrap();
        let text2 = to_text(&g2);
        assert_eq!(text1, text2, "printing must be a fixpoint");
        assert_eq!(g1.len(), g2.len());
    }

    #[test]
    fn escape_renders_control_bytes() {
        assert_eq!(escape(b"\r\n"), "\"\\r\\n\"");
        assert_eq!(escape(&[0x00, 0x9c]), "\"\\0\\x9c\"");
        assert_eq!(escape(b"a\"b"), "\"a\\\"b\"");
    }
}

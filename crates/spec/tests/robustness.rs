//! Parser robustness: arbitrary input must produce errors, never panics,
//! and valid specs must survive mutation-based fuzzing without crashes.

use proptest::prelude::*;
use protoobf_spec::parse_spec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_strings_never_panic(src in ".{0,200}") {
        let _ = parse_spec(&src);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = parse_spec(s);
        }
    }

    #[test]
    fn mutated_valid_specs_never_panic(pos in 0usize..400, c in any::<char>()) {
        let base = r#"
            message M {
                u16 id;
                u16 length = len(data);
                bytes data sized_by length;
                ascii tag until ";";
                u8 n = count(items);
                tabular items count_by n { u16 v; }
                bytes tail rest;
            }
        "#;
        let mut s: Vec<char> = base.chars().collect();
        if pos < s.len() {
            s[pos] = c;
        }
        let mutated: String = s.into_iter().collect();
        let _ = parse_spec(&mutated);
    }

    #[test]
    fn truncated_valid_specs_never_panic(cut in 0usize..300) {
        let base = r#"message M { u16 a; seq s { u8 b; optional o if b == 1 { u8 c; } } }"#;
        let cut = cut.min(base.len());
        if base.is_char_boundary(cut) {
            let _ = parse_spec(&base[..cut]);
        }
    }
}

#[test]
fn deeply_nested_spec_parses() {
    // 32 levels of nested sequences: recursion depth sanity.
    let mut src = String::from("message Deep {\n");
    for i in 0..32 {
        src.push_str(&format!("seq s{i} {{\n"));
    }
    src.push_str("u8 x;\n");
    for _ in 0..32 {
        src.push('}');
    }
    src.push('}');
    let g = parse_spec(&src).unwrap();
    assert_eq!(g.len(), 34);
}

#[test]
fn long_field_lists_parse() {
    let mut src = String::from("message Wide {\n");
    for i in 0..300 {
        src.push_str(&format!("u8 f{i};\n"));
    }
    src.push('}');
    let g = parse_spec(&src).unwrap();
    assert_eq!(g.len(), 301);
}

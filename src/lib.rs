//! # ProtoObf — specification-based protocol obfuscation
//!
//! A Rust implementation of *"Specification-Based Protocol Obfuscation"*
//! (Duchêne, Alata, Nicomette, Kaâniche, Le Guernic — DSN 2018): protocol
//! message formats are obfuscated **at the specification level** with
//! invertible transformations, and a serializer/parser library is derived
//! automatically, so applications keep a stable accessor interface while
//! the wire format becomes hard to reverse engineer.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`](protoobf_core) — format graphs, transformations, codecs;
//! * [`spec`] — the specification DSL;
//! * [`codegen`] — C library generation + potency metrics;
//! * [`protocols`] — Modbus/TCP and HTTP formats and core applications;
//! * [`transport`] — the non-blocking transport layer and the obfuscating
//!   gateway pair (the paper's deployment model over real sockets);
//! * [`pre`] — the reverse-engineering toolkit used for resilience
//!   experiments.
//!
//! ```
//! use protoobf::{Obfuscator, spec::parse_spec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = parse_spec(r#"
//!     message Ping {
//!         u16 id;
//!         u16 length = len(payload);
//!         bytes payload sized_by length;
//!     }
//! "#)?;
//! let codec = Obfuscator::new(&graph).seed(7).max_per_node(2).obfuscate()?;
//!
//! let mut msg = codec.message();
//! msg.set_uint("id", 99)?;
//! msg.set("payload", b"hello".as_slice())?;
//! let wire = codec.serialize(&msg)?;
//! let back = codec.parse(&wire)?;
//! assert_eq!(back.get_uint("id")?, 99);
//! assert_eq!(back.get("payload")?.as_bytes(), b"hello");
//! # Ok(())
//! # }
//! ```

pub use protoobf_core::{
    Boundary, BuildError, ByteOp, Codec, CodecService, Endian, FormatGraph, GraphBuilder, Message,
    NodeId, Obfuscator, ParseError, Path, SpecError, TerminalKind, TransformError, TransformKind,
    Value,
};

pub use protoobf_codegen as codegen;
pub use protoobf_core as core;
pub use protoobf_pre as pre;
pub use protoobf_protocols as protocols;
pub use protoobf_spec as spec;
pub use protoobf_transport as transport;

//! # ProtoObf — specification-based protocol obfuscation
//!
//! A Rust implementation of *"Specification-Based Protocol Obfuscation"*
//! (Duchêne, Alata, Nicomette, Kaâniche, Le Guernic — DSN 2018): protocol
//! message formats are obfuscated **at the specification level** with
//! invertible transformations, and a serializer/parser library is derived
//! automatically, so applications keep a stable accessor interface while
//! the wire format becomes hard to reverse engineer.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`](protoobf_core) — format graphs, transformations, codecs;
//! * [`spec`] — the specification DSL;
//! * [`codegen`] — C library generation + potency metrics;
//! * [`protocols`] — Modbus/TCP and HTTP formats and core applications;
//! * [`transport`] — the non-blocking transport layer and the obfuscating
//!   gateway pair (the paper's deployment model over real sockets);
//! * [`pre`] — the reverse-engineering toolkit used for resilience
//!   experiments.
//!
//! The deployment entry point is the **profile**: one serializable,
//! shared-secret-keyed object ([`Profile`]) from which each peer
//! independently derives the whole obfuscated stack ([`Endpoint`], via
//! [`ProfileExt::build`] and the standard [`StdResolver`]), verified
//! equal across peers by comparing [`Fingerprint`]s before any traffic
//! flows:
//!
//! ```
//! use protoobf::{Profile, ProfileExt};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "profile protoobf/1\n\
//!             tx builtin:dns-query\n\
//!             rx builtin:dns-response\n\
//!             key \"shared secret\"\n\
//!             level 1\n";
//! let ours = Profile::parse(text)?.build()?;
//! let theirs = Profile::parse(text)?.build()?; // the peer's copy
//! assert_eq!(ours.fingerprint(), theirs.fingerprint());
//! # Ok(())
//! # }
//! ```
//!
//! Below the profile, the codec layers remain directly usable:
//!
//! ```
//! use protoobf::{Obfuscator, spec::parse_spec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = parse_spec(r#"
//!     message Ping {
//!         u16 id;
//!         u16 length = len(payload);
//!         bytes payload sized_by length;
//!     }
//! "#)?;
//! let codec = Obfuscator::new(&graph).key("shared secret").max_per_node(2).obfuscate()?;
//!
//! let mut msg = codec.message();
//! msg.set_uint("id", 99)?;
//! msg.set("payload", b"hello".as_slice())?;
//! let wire = codec.serialize(&msg)?;
//! let back = codec.parse(&wire)?;
//! assert_eq!(back.get_uint("id")?, 99);
//! assert_eq!(back.get("payload")?.as_bytes(), b"hello");
//! # Ok(())
//! # }
//! ```

pub use protoobf_core::{
    Boundary, BuildError, ByteOp, Codec, CodecService, Derivation, Endian, Endpoint, Fingerprint,
    FormatGraph, GraphBuilder, Message, NodeId, ObfConfig, Obfuscator, ParseError, Path, Profile,
    ProfileError, SpecError, SpecResolver, SpecSource, TerminalKind, TransformError, TransformKind,
    Value,
};

pub use protoobf_codegen as codegen;
pub use protoobf_core as core;
pub use protoobf_pre as pre;
pub use protoobf_protocols as protocols;
pub use protoobf_spec as spec;
pub use protoobf_transport as transport;

pub mod resilience;

/// The standard [`SpecResolver`]: `builtin:NAME` maps to the bundled
/// experiment protocols, anything else is read as a specification DSL
/// file. This is what [`ProfileExt::build`] and the `protoobf` CLI use.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdResolver;

impl SpecResolver for StdResolver {
    fn resolve(&self, src: &SpecSource) -> Result<FormatGraph, String> {
        resolve_spec(src)
    }
}

/// Resolves one [`SpecSource`] with the standard rules (see
/// [`StdResolver`]).
///
/// # Errors
///
/// A human-readable message naming the source: unknown builtin, missing
/// file, or DSL parse failure.
pub fn resolve_spec(src: &SpecSource) -> Result<FormatGraph, String> {
    match src {
        SpecSource::Builtin(name) => match name.as_str() {
            "dns-query" => Ok(protocols::dns::query_graph()),
            "dns-response" => Ok(protocols::dns::response_graph()),
            "http-request" => Ok(protocols::http::request_graph()),
            "http-response" => Ok(protocols::http::response_graph()),
            "modbus-request" => Ok(protocols::modbus::request_graph()),
            "modbus-response" => Ok(protocols::modbus::response_graph()),
            other => Err(format!(
                "unknown builtin protocol {other:?} (expected dns-query, dns-response, \
                 http-request, http-response, modbus-request or modbus-response)"
            )),
        },
        SpecSource::File(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            spec::parse_spec(&text).map_err(|e| e.to_string())
        }
    }
}

/// Convenience extension binding [`Profile`] to the [`StdResolver`], so
/// application code can write `profile.build()?` instead of threading a
/// resolver through.
pub trait ProfileExt {
    /// Builds the endpoint with the standard resolver
    /// ([`Profile::build_with`]).
    ///
    /// # Errors
    ///
    /// See [`Profile::build_with`].
    fn build(&self) -> Result<Endpoint, ProfileError>;

    /// Derives only the fingerprint ([`Profile::fingerprint_with`]).
    ///
    /// # Errors
    ///
    /// See [`Profile::build_with`].
    fn fingerprint(&self) -> Result<Fingerprint, ProfileError>;
}

impl ProfileExt for Profile {
    fn build(&self) -> Result<Endpoint, ProfileError> {
        self.build_with(&StdResolver)
    }

    fn fingerprint(&self) -> Result<Fingerprint, ProfileError> {
        self.fingerprint_with(&StdResolver)
    }
}

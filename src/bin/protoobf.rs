//! `protoobf` — command-line front end to the obfuscation framework.
//!
//! ```text
//! protoobf check <spec>                      validate a specification
//! protoobf print <spec>                      re-print the canonical form
//! protoobf dot <spec> [--level N --seed N]   Graphviz (plain or obfuscated)
//! protoobf gen <spec> [--level N --seed N] [-o lib.c]
//!                                            generate the C library + metrics
//! protoobf demo <spec> [--level N --seed N]  round-trip a random message
//! protoobf gateway <spec> --listen A --upstream B --mode encode|decode
//!                  [--level N --seed N --workers N --accept-limit N]
//!                                            run one obfuscation gateway
//! protoobf recv <spec> --listen A [--workers N --accept-limit N]
//!                                            clear-framed echo server
//! protoobf send <spec> --connect A [--count N --seed N]
//!                                            clear-framed client, verifies echoes
//! ```
//!
//! `<spec>` is a DSL file, or `builtin:NAME` for the bundled experiment
//! protocols (`dns-query`, `dns-response`, `http-request`,
//! `http-response`, `modbus-request`, `modbus-response`).
//!
//! A full loopback deployment (the paper's gateway-pair model):
//!
//! ```sh
//! protoobf recv    builtin:modbus-request --listen 127.0.0.1:9002 &
//! protoobf gateway builtin:modbus-request --mode decode --seed 7 \
//!     --listen 127.0.0.1:9001 --upstream 127.0.0.1:9002 &
//! protoobf gateway builtin:modbus-request --mode encode --seed 7 \
//!     --listen 127.0.0.1:9000 --upstream 127.0.0.1:9001 &
//! protoobf send    builtin:modbus-request --connect 127.0.0.1:9000 --count 64
//! ```

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

use protoobf::codegen::{generate, measure};
use protoobf::core::framing::{FrameReader, FrameWriter};
use protoobf::core::sample::random_message;
use protoobf::core::service::CodecService;
use protoobf::transport::{evloop, Echo, Gateway, GatewayMode, LoopConfig, Metrics};
use protoobf::{Codec, Obfuscator};

struct Options {
    spec_path: String,
    level: u32,
    seed: u64,
    out: Option<String>,
    listen: Option<String>,
    upstream: Option<String>,
    connect: Option<String>,
    mode: Option<String>,
    workers: Option<usize>,
    accept_limit: Option<u64>,
    count: usize,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: protoobf <check|print|dot|gen|demo|gateway|recv|send> <spec-file|builtin:NAME>\n\
         \x20      [--level N] [--seed N] [-o FILE] [--listen ADDR] [--upstream ADDR]\n\
         \x20      [--connect ADDR] [--mode encode|decode] [--workers N]\n\
         \x20      [--accept-limit N] [--count N]"
    );
    ExitCode::from(2)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        spec_path: String::new(),
        level: 1,
        seed: 0,
        out: None,
        listen: None,
        upstream: None,
        connect: None,
        mode: None,
        workers: None,
        accept_limit: None,
        count: 16,
    };
    let mut spec_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().cloned().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--level" => {
                opts.level = value("--level")?.parse().map_err(|_| "--level must be a number")?;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|_| "--seed must be a number")?;
            }
            "-o" | "--out" => opts.out = Some(value("-o")?),
            "--listen" => opts.listen = Some(value("--listen")?),
            "--upstream" => opts.upstream = Some(value("--upstream")?),
            "--connect" => opts.connect = Some(value("--connect")?),
            "--mode" => opts.mode = Some(value("--mode")?),
            "--workers" => {
                opts.workers =
                    Some(value("--workers")?.parse().map_err(|_| "--workers must be a number")?);
            }
            "--accept-limit" => {
                opts.accept_limit = Some(
                    value("--accept-limit")?
                        .parse()
                        .map_err(|_| "--accept-limit must be a number")?,
                );
            }
            "--count" => {
                opts.count = value("--count")?.parse().map_err(|_| "--count must be a number")?;
            }
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    opts.spec_path = spec_path.ok_or("missing specification file")?;
    Ok(opts)
}

fn load(path: &str) -> Result<protoobf::FormatGraph, String> {
    if let Some(name) = path.strip_prefix("builtin:") {
        use protoobf::protocols::{dns, http, modbus};
        return match name {
            "dns-query" => Ok(dns::query_graph()),
            "dns-response" => Ok(dns::response_graph()),
            "http-request" => Ok(http::request_graph()),
            "http-response" => Ok(http::response_graph()),
            "modbus-request" => Ok(modbus::request_graph()),
            "modbus-response" => Ok(modbus::response_graph()),
            other => Err(format!(
                "unknown builtin protocol {other:?} (expected dns-query, dns-response, \
                 http-request, http-response, modbus-request or modbus-response)"
            )),
        };
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    protoobf::spec::parse_spec(&text).map_err(|e| e.to_string())
}

fn codec_for(graph: &protoobf::FormatGraph, opts: &Options) -> Result<Codec, String> {
    if opts.level == 0 {
        Ok(Codec::identity(graph))
    } else {
        Obfuscator::new(graph)
            .seed(opts.seed)
            .max_per_node(opts.level)
            .obfuscate()
            .map_err(|e| e.to_string())
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.clone(), rest.to_vec()),
        None => return Err("missing command".into()),
    };
    let opts = parse_options(&rest)?;
    let graph = load(&opts.spec_path)?;

    match command.as_str() {
        "check" => {
            println!(
                "{}: ok — {} nodes, {} terminals",
                graph.name(),
                graph.len(),
                graph.ids().filter(|&i| graph.node(i).is_terminal()).count()
            );
        }
        "print" => {
            print!("{}", protoobf::spec::to_text(&graph));
        }
        "dot" => {
            if opts.level == 0 {
                print!("{}", protoobf::core::dot::format_graph_to_dot(&graph));
            } else {
                let codec = codec_for(&graph, &opts)?;
                print!("{}", protoobf::core::dot::obf_graph_to_dot(codec.obf_graph()));
            }
        }
        "gen" => {
            let codec = codec_for(&graph, &opts)?;
            let lib = generate(&codec);
            let m = measure(&lib);
            eprintln!(
                "{} transformations; {} lines, {} structs, call graph {}x{}",
                codec.transform_count(),
                m.lines,
                m.structs,
                m.callgraph_size,
                m.callgraph_depth
            );
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, &lib.source)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
                None => print!("{}", lib.source),
            }
        }
        "demo" => {
            let codec = codec_for(&graph, &opts)?;
            let mut rng = rand::thread_rng();
            let msg = random_message(&codec, &mut rng);
            // Reusable sessions over the compiled plan: the steady-state
            // encode/decode path a deployment would hold per connection.
            let mut serializer = codec.serializer();
            let mut parser = codec.parser();
            let mut wire = Vec::new();
            serializer.serialize_into(&msg, &mut wire).map_err(|e| e.to_string())?;
            println!(
                "plan: {} transformations, {} slots, {} recovery steps; wire: {} bytes",
                codec.transform_count(),
                codec.plan().slots(),
                codec.plan().recovery_steps(),
                wire.len()
            );
            for chunk in wire.chunks(16) {
                let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
                println!("  {}", hex.join(" "));
            }
            parser.parse_in_place(&wire).map_err(|e| format!("self-parse failed: {e}"))?;
            println!("round-trip: ok");
        }
        "gateway" => {
            let listen = opts.listen.as_deref().ok_or("gateway needs --listen ADDR")?;
            let upstream = opts.upstream.as_deref().ok_or("gateway needs --upstream ADDR")?;
            let mode = match opts.mode.as_deref() {
                Some("encode") => GatewayMode::Encode,
                Some("decode") => GatewayMode::Decode,
                Some(other) => {
                    return Err(format!("--mode must be encode or decode, got {other:?}"))
                }
                None => return Err("gateway needs --mode encode|decode".into()),
            };
            let codec = codec_for(&graph, &opts)?;
            let gw = Gateway::new(&graph, codec, mode, upstream).map_err(|e| e.to_string())?;
            let listener =
                std::net::TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
            let cfg = loop_config(&opts);
            eprintln!(
                "{mode:?} gateway on {listen} → {upstream} ({} workers, level {}, seed {})",
                cfg.workers, opts.level, opts.seed
            );
            let shutdown = AtomicBool::new(false);
            gw.serve(listener, &cfg, &shutdown).map_err(|e| e.to_string())?;
            eprintln!("gateway done: {}", gw.metrics().snapshot());
        }
        "recv" => {
            let listen = opts.listen.as_deref().ok_or("recv needs --listen ADDR")?;
            let svc = CodecService::new(Codec::identity(&graph));
            let metrics = Metrics::new();
            let listener =
                std::net::TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
            let cfg = loop_config(&opts);
            eprintln!("echo server on {listen} ({} workers)", cfg.workers);
            let shutdown = AtomicBool::new(false);
            evloop::serve(listener, &cfg, &shutdown, &metrics, |stream, _peer| {
                Ok(Echo::new(stream, &svc, &metrics))
            })
            .map_err(|e| e.to_string())?;
            eprintln!("echo server done: {}", metrics.snapshot());
        }
        "send" => {
            let connect = opts.connect.as_deref().ok_or("send needs --connect ADDR")?;
            let clear = Codec::identity(&graph);
            let stream = std::net::TcpStream::connect(connect)
                .map_err(|e| format!("connect {connect}: {e}"))?;
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(60)))
                .map_err(|e| e.to_string())?;
            let mut writer = FrameWriter::new(&clear, &stream);
            let mut reader = FrameReader::new(&clear, &stream);
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
            let mut bytes = 0usize;
            for i in 0..opts.count {
                let msg = random_message(&clear, &mut rng);
                // Identity serialization is deterministic: the bytes sent
                // are the reference the echo must match byte-for-byte.
                let reference = clear.serialize(&msg).map_err(|e| e.to_string())?;
                writer.send_raw(&reference).map_err(|e| e.to_string())?;
                let echoed = reader
                    .recv_raw()
                    .map_err(|e| e.to_string())?
                    .ok_or_else(|| format!("stream ended after {i} messages"))?;
                if echoed != reference {
                    return Err(format!("message {i}: echoed wire differs from reference"));
                }
                bytes += reference.len() + 4;
            }
            println!(
                "{} messages ({} bytes framed) round-tripped byte-identical through {connect}",
                opts.count, bytes
            );
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}

fn loop_config(opts: &Options) -> LoopConfig {
    let mut cfg = LoopConfig::default();
    if let Some(w) = opts.workers {
        cfg.workers = w.max(1);
    }
    cfg.accept_limit = opts.accept_limit;
    cfg
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.contains("missing command") {
                return usage();
            }
            ExitCode::FAILURE
        }
    }
}

//! `protoobf` — command-line front end to the obfuscation framework.
//!
//! ```text
//! protoobf check <spec>                      validate a specification
//! protoobf print <spec>                      re-print the canonical form
//! protoobf dot <spec> [--level N --seed N]   Graphviz (plain or obfuscated)
//! protoobf gen <spec> [--level N --seed N] [-o lib.c]
//!                                            generate the C library + metrics
//! protoobf demo <spec> [--level N --seed N]  round-trip a random message
//! ```

use std::process::ExitCode;

use protoobf::codegen::{generate, measure};
use protoobf::core::sample::random_message;
use protoobf::{Codec, Obfuscator};

struct Options {
    spec_path: String,
    level: u32,
    seed: u64,
    out: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: protoobf <check|print|dot|gen|demo> <spec-file> [--level N] [--seed N] [-o FILE]"
    );
    ExitCode::from(2)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut spec_path = None;
    let mut level = 1u32;
    let mut seed = 0u64;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--level" => {
                level = it
                    .next()
                    .ok_or("--level needs a value")?
                    .parse()
                    .map_err(|_| "--level must be a number")?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be a number")?;
            }
            "-o" | "--out" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Options { spec_path: spec_path.ok_or("missing specification file")?, level, seed, out })
}

fn load(path: &str) -> Result<protoobf::FormatGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    protoobf::spec::parse_spec(&text).map_err(|e| e.to_string())
}

fn codec_for(graph: &protoobf::FormatGraph, opts: &Options) -> Result<Codec, String> {
    if opts.level == 0 {
        Ok(Codec::identity(graph))
    } else {
        Obfuscator::new(graph)
            .seed(opts.seed)
            .max_per_node(opts.level)
            .obfuscate()
            .map_err(|e| e.to_string())
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.clone(), rest.to_vec()),
        None => return Err("missing command".into()),
    };
    let opts = parse_options(&rest)?;
    let graph = load(&opts.spec_path)?;

    match command.as_str() {
        "check" => {
            println!(
                "{}: ok — {} nodes, {} terminals",
                graph.name(),
                graph.len(),
                graph.ids().filter(|&i| graph.node(i).is_terminal()).count()
            );
        }
        "print" => {
            print!("{}", protoobf::spec::to_text(&graph));
        }
        "dot" => {
            if opts.level == 0 {
                print!("{}", protoobf::core::dot::format_graph_to_dot(&graph));
            } else {
                let codec = codec_for(&graph, &opts)?;
                print!("{}", protoobf::core::dot::obf_graph_to_dot(codec.obf_graph()));
            }
        }
        "gen" => {
            let codec = codec_for(&graph, &opts)?;
            let lib = generate(&codec);
            let m = measure(&lib);
            eprintln!(
                "{} transformations; {} lines, {} structs, call graph {}x{}",
                codec.transform_count(),
                m.lines,
                m.structs,
                m.callgraph_size,
                m.callgraph_depth
            );
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, &lib.source)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
                None => print!("{}", lib.source),
            }
        }
        "demo" => {
            let codec = codec_for(&graph, &opts)?;
            let mut rng = rand::thread_rng();
            let msg = random_message(&codec, &mut rng);
            // Reusable sessions over the compiled plan: the steady-state
            // encode/decode path a deployment would hold per connection.
            let mut serializer = codec.serializer();
            let mut parser = codec.parser();
            let mut wire = Vec::new();
            serializer.serialize_into(&msg, &mut wire).map_err(|e| e.to_string())?;
            println!(
                "plan: {} transformations, {} slots, {} recovery steps; wire: {} bytes",
                codec.transform_count(),
                codec.plan().slots(),
                codec.plan().recovery_steps(),
                wire.len()
            );
            for chunk in wire.chunks(16) {
                let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
                println!("  {}", hex.join(" "));
            }
            parser.parse_in_place(&wire).map_err(|e| format!("self-parse failed: {e}"))?;
            println!("round-trip: ok");
        }
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.contains("missing command") {
                return usage();
            }
            ExitCode::FAILURE
        }
    }
}

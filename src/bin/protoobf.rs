//! `protoobf` — command-line front end to the obfuscation framework.
//!
//! ```text
//! protoobf check <target>                    validate; with --profile also
//!                                            print the derivation fingerprint
//! protoobf lint <target> [--deny-warnings]   static verification + spec lint:
//!                                            machine-readable diagnostics
//!                                            (P… errors exit 1, L… warnings
//!                                            exit 0 unless --deny-warnings)
//! protoobf print <target>                    re-print the canonical form
//!                                            (spec text, or profile + summary)
//! protoobf dot <target> [--level N --key K]  Graphviz (plain or obfuscated)
//! protoobf gen <target> [--level N --key K] [-o lib.c]
//!                                            generate the C library + metrics
//! protoobf demo <target> [--level N --key K] round-trip a random message
//! protoobf gateway <target> --listen A --upstream B --mode encode|decode
//!                  [--workers N --accept-limit N --accept-burst N
//!                   --backpressure BYTES --admin HOST:PORT --quiet]
//!                                            run one obfuscation gateway
//! protoobf recv <target> --listen A [--workers N --accept-limit N
//!                  --accept-burst N --backpressure BYTES
//!                  --admin HOST:PORT --quiet]
//!                                            clear-framed echo/responder server
//! protoobf send <target> --connect A [--count N --admin HOST:PORT --quiet]
//!                                            clear-framed client, verifies echoes
//! protoobf tunnel <target> --connect A | --listen A
//!                  [--exit-on-eof --backpressure BYTES --accept-limit N
//!                   --admin HOST:PORT --quiet]
//!                                            covert byte tunnel: stdin rides
//!                                            carrier slots of sampled cover
//!                                            messages, peer payload → stdout
//! protoobf fuzz <target> [--cases N] [--corpus DIR]
//!                                            plan-aware differential fuzzing;
//!                                            exits non-zero on any divergence
//! protoobf resilience [--samples N] [--max-level N] [-o FILE]
//!                                            PRE attack trajectory over the
//!                                            builtin protocols × levels
//! ```
//!
//! `<target>` is either a positional spec — a DSL file, or `builtin:NAME`
//! for the bundled experiment protocols (`dns-query`, `dns-response`,
//! `http-request`, `http-response`, `modbus-request`,
//! `modbus-response`) — or `--profile FILE`, a profile in the
//! [`protoobf::Profile`] text format. The profile is the deployment's
//! single source of truth: spec source(s) (optionally distinct per
//! direction — asymmetric request/response), the shared key, level,
//! allowed transformations and service tuning. Legacy flags map onto an
//! implicit symmetric profile: `--key STRING` sets the secret, `--seed N`
//! is the deprecated alias for `--key N`, `--level N` the budget.
//!
//! A full loopback deployment (the paper's gateway-pair model), driven by
//! two copies of one profile file:
//!
//! ```sh
//! cat > chain.profile <<'EOF'
//! profile protoobf/1
//! tx builtin:dns-query
//! rx builtin:dns-response
//! key "shared-secret"
//! level 2
//! EOF
//! protoobf recv    --profile chain.profile --listen 127.0.0.1:9002 &
//! protoobf gateway --profile chain.profile --mode decode \
//!     --listen 127.0.0.1:9001 --upstream 127.0.0.1:9002 &
//! protoobf gateway --profile chain.profile --mode encode \
//!     --listen 127.0.0.1:9000 --upstream 127.0.0.1:9001 &
//! protoobf send    --profile chain.profile --connect 127.0.0.1:9000 --count 64
//! ```
//!
//! Both gateways print the same `fingerprint` line when (and only when)
//! their profiles agree — compare them before sending traffic.
//!
//! Every networked subcommand takes `--admin HOST:PORT` to serve a live
//! scrape plane next to the data plane (`/metrics` in Prometheus text
//! format, `/events` for the connection flight recorder, `/health`),
//! and prints one unified telemetry summary at exit unless `--quiet`.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use protoobf::codegen::{generate, measure};
use protoobf::core::framing::{FrameReader, FrameWriter};
use protoobf::core::fuzz::{fuzz_codec, FuzzConfig, Reproducer};
use protoobf::core::plan::CopyProgram;
use protoobf::core::sample::random_message;
use protoobf::core::verify;
use protoobf::resilience;
use protoobf::transport::{
    evloop, peer_token, serve_admin, spawn_reader, wake_pair, Echo, Gateway, GatewayMode,
    LoopConfig, Metrics, PayloadBuf, Responder, Session, Telemetry, TunnelSession,
};
use protoobf::{Derivation, Endpoint, ObfConfig, Profile, ProfileExt, SpecSource, TransformKind};

/// A CLI failure: usage errors re-print the usage text naming the
/// offending token (exit 2); run errors report and exit 1.
enum CliError {
    Usage(String),
    Run(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Run(msg)
    }
}

fn usage(msg: &str) -> String {
    format!(
        "error: {msg}\n\
         usage: protoobf <check|lint|print|dot|gen|demo|gateway|recv|send|tunnel|fuzz|resilience>\n\
         \x20      <spec-file|builtin:NAME> | --profile FILE\n\
         \x20      [--key STRING] [--seed N (deprecated alias for --key N)] [--level N]\n\
         \x20      [-o FILE] [--listen ADDR] [--upstream ADDR] [--connect ADDR]\n\
         \x20      [--mode encode|decode] [--workers N] [--accept-limit N] [--count N]\n\
         \x20      [--accept-burst N] [--backpressure BYTES]\n\
         \x20      [--admin HOST:PORT] [--quiet] [--exit-on-eof] [--deny-warnings]\n\
         \x20      [--cases N] [--corpus DIR] [--samples N] [--max-level N]"
    )
}

struct Options {
    spec_path: Option<String>,
    profile: Option<String>,
    level: Option<u32>,
    seed: Option<u64>,
    key: Option<String>,
    out: Option<String>,
    listen: Option<String>,
    upstream: Option<String>,
    connect: Option<String>,
    mode: Option<String>,
    workers: Option<usize>,
    accept_limit: Option<u64>,
    accept_burst: Option<usize>,
    backpressure: Option<usize>,
    admin: Option<String>,
    quiet: bool,
    exit_on_eof: bool,
    deny_warnings: bool,
    count: usize,
    cases: Option<u32>,
    corpus: Option<String>,
    samples: Option<usize>,
    max_level: Option<u32>,
}

fn parse_options(args: &[String], spec_required: bool) -> Result<Options, String> {
    let mut opts = Options {
        spec_path: None,
        profile: None,
        level: None,
        seed: None,
        key: None,
        out: None,
        listen: None,
        upstream: None,
        connect: None,
        mode: None,
        workers: None,
        accept_limit: None,
        accept_burst: None,
        backpressure: None,
        admin: None,
        quiet: false,
        exit_on_eof: false,
        deny_warnings: false,
        count: 16,
        cases: None,
        corpus: None,
        samples: None,
        max_level: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().cloned().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--profile" => opts.profile = Some(value("--profile")?),
            "--level" => opts.level = Some(number("--level", &value("--level")?)?),
            "--seed" => opts.seed = Some(number("--seed", &value("--seed")?)?),
            "--key" => opts.key = Some(value("--key")?),
            "-o" | "--out" => opts.out = Some(value("-o")?),
            "--listen" => opts.listen = Some(addr("--listen", &value("--listen")?)?),
            "--upstream" => opts.upstream = Some(addr("--upstream", &value("--upstream")?)?),
            "--connect" => opts.connect = Some(addr("--connect", &value("--connect")?)?),
            "--mode" => opts.mode = Some(value("--mode")?),
            "--workers" => opts.workers = Some(number("--workers", &value("--workers")?)?),
            "--accept-limit" => {
                opts.accept_limit = Some(number("--accept-limit", &value("--accept-limit")?)?);
            }
            "--accept-burst" => {
                opts.accept_burst = Some(number("--accept-burst", &value("--accept-burst")?)?);
            }
            "--backpressure" => {
                opts.backpressure = Some(number("--backpressure", &value("--backpressure")?)?);
            }
            "--admin" => opts.admin = Some(addr("--admin", &value("--admin")?)?),
            "--quiet" => opts.quiet = true,
            "--exit-on-eof" => opts.exit_on_eof = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--count" => opts.count = number("--count", &value("--count")?)?,
            "--cases" => opts.cases = Some(number("--cases", &value("--cases")?)?),
            "--corpus" => opts.corpus = Some(value("--corpus")?),
            "--samples" => opts.samples = Some(number("--samples", &value("--samples")?)?),
            "--max-level" => {
                opts.max_level = Some(number("--max-level", &value("--max-level")?)?);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other if opts.spec_path.is_none() => opts.spec_path = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if opts.profile.is_some() {
        if let Some(spec) = &opts.spec_path {
            return Err(format!("--profile excludes the positional spec {spec:?}"));
        }
        for (flag, given) in [
            ("--seed", opts.seed.is_some()),
            ("--key", opts.key.is_some()),
            ("--level", opts.level.is_some()),
        ] {
            if given {
                return Err(format!("--profile excludes {flag} (set it in the profile file)"));
            }
        }
    } else if opts.spec_path.is_none() && spec_required {
        return Err("missing specification (give a spec file, builtin:NAME or --profile)".into());
    }
    Ok(opts)
}

fn number<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{flag}: invalid number {v:?}"))
}

/// Validates an address flag's **shape** eagerly (typos surface as usage
/// errors naming the token), without resolving hostnames: DNS stays a
/// runtime concern, so a transient resolver failure cannot masquerade as
/// a usage error.
fn addr(flag: &str, v: &str) -> Result<String, String> {
    if v.parse::<std::net::SocketAddr>().is_ok() {
        return Ok(v.to_string());
    }
    match v.rsplit_once(':') {
        Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => Ok(v.to_string()),
        _ => Err(format!("{flag}: invalid address {v:?} (expected HOST:PORT)")),
    }
}

/// The profile driving this invocation: `--profile FILE`, or an implicit
/// symmetric profile assembled from the legacy flags.
fn profile_for(opts: &Options) -> Result<Profile, CliError> {
    if let Some(path) = &opts.profile {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Run(format!("cannot read {path}: {e}")))?;
        return Profile::parse(&text).map_err(|e| CliError::Run(format!("{path}: {e}")));
    }
    // The positional spec is taken verbatim (unlike sources inside a
    // profile file, a CLI path may contain spaces or '#').
    let raw = opts.spec_path.as_deref().expect("parse_options guarantees a spec");
    let spec = match raw.strip_prefix("builtin:") {
        Some(name) => SpecSource::Builtin(name.to_string()),
        None => SpecSource::File(raw.to_string()),
    };
    // Legacy mapping: --seed N is an alias for --key N (the decimal
    // string); explicit --key wins. Default key "0" matches the old
    // default seed of 0.
    let key = match (&opts.key, opts.seed) {
        (Some(k), _) => k.clone(),
        (None, Some(seed)) => {
            eprintln!(
                "note: --seed {seed} is deprecated and now derives the stack from key \
                 \"{seed}\" (not the raw u64 seed of older releases); pair only with peers \
                 on the same version, and prefer --key or a profile file"
            );
            seed.to_string()
        }
        (None, None) => "0".to_string(),
    };
    Ok(Profile::symmetric(spec).key(key).level(opts.level.unwrap_or(1)))
}

fn endpoint_for(opts: &Options) -> Result<Endpoint, CliError> {
    profile_for(opts)?.build().map_err(|e| CliError::Run(e.to_string()))
}

/// Codec-level derivation (no service pools) for the one-shot
/// inspection subcommands.
fn derivation_for(opts: &Options) -> Result<Derivation, CliError> {
    profile_for(opts)?.derive_with(&protoobf::StdResolver).map_err(|e| CliError::Run(e.to_string()))
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.clone(), rest.to_vec()),
        None => return Err(CliError::Usage("missing command".into())),
    };
    let opts = parse_options(&rest, command != "resilience").map_err(CliError::Usage)?;

    match command.as_str() {
        "check" => {
            let describe = |label: &str, graph: &protoobf::FormatGraph| {
                println!(
                    "{label}{}: ok — {} nodes, {} terminals",
                    graph.name(),
                    graph.len(),
                    graph.ids().filter(|&i| graph.node(i).is_terminal()).count()
                );
            };
            if opts.profile.is_some() {
                // A profile check validates the whole derivation (both
                // halves) and reports the fingerprint to diff against the
                // peer's.
                let derivation = derivation_for(&opts)?;
                describe("tx ", derivation.tx.plain());
                if let Some(rx) = &derivation.rx {
                    describe("rx ", rx.plain());
                }
                println!("fingerprint {}", derivation.fingerprint);
            } else {
                // A bare spec check only parses and validates — no
                // obfuscation derivation is paid for.
                let graph =
                    protoobf::resolve_spec(profile_for(&opts)?.tx()).map_err(CliError::Run)?;
                graph.validate().map_err(|e| CliError::Run(e.to_string()))?;
                describe("", &graph);
            }
        }
        "lint" => {
            // Static verification of the compiled IR (P… errors) plus the
            // specification lints (L… warnings) — the offline form of the
            // debug-build compile asserts, over every leg of the profile.
            let profile = profile_for(&opts)?;
            let derivation = profile
                .derive_with(&protoobf::StdResolver)
                .map_err(|e| CliError::Run(e.to_string()))?;
            let mut errors = 0usize;
            let mut warnings = 0usize;
            let mut legs = vec![("tx", &derivation.tx)];
            if let Some(rx) = &derivation.rx {
                legs.push(("rx", rx));
            }
            for (leg, codec) in legs {
                let name = codec.plain().name().to_string();
                let mut emit = |code: &str, message: &str| {
                    let severity = if code.starts_with('P') { "error" } else { "warning" };
                    if severity == "error" {
                        errors += 1;
                    } else {
                        warnings += 1;
                    }
                    println!("{code} {severity} {leg} {name}: {message}");
                };
                for d in verify::verify_codec(codec) {
                    emit(d.code, &d.message);
                }
                // The gateway pairing this leg would run in production:
                // clear↔obfuscated transcode programs, both directions.
                let clear = protoobf::Codec::identity(codec.plain());
                for (src, dst) in [(&clear, codec), (codec, &clear)] {
                    match CopyProgram::compile(src.obf_graph(), dst.obf_graph()) {
                        Some(prog) => {
                            for d in
                                verify::verify_copy_program(src.obf_graph(), dst.obf_graph(), &prog)
                            {
                                emit(d.code, &d.message);
                            }
                        }
                        None => emit(
                            verify::COPY_TYPE_MISMATCH,
                            "clear↔obfuscated pairing rejected: plain specifications diverged",
                        ),
                    }
                }
                for l in protoobf::spec::lint::lint_graph(codec.plain()) {
                    emit(l.code, &l.message);
                }
                for l in protoobf::spec::lint::lint_codec(codec, profile.obf()) {
                    emit(l.code, &l.message);
                }
            }
            println!("lint: {errors} error(s), {warnings} warning(s)");
            if errors > 0 {
                return Err(CliError::Run(format!("lint failed with {errors} error(s)")));
            }
            if warnings > 0 && opts.deny_warnings {
                return Err(CliError::Run(format!(
                    "lint: {warnings} warning(s) denied (--deny-warnings)"
                )));
            }
        }
        "print" => {
            if opts.profile.is_some() {
                let endpoint = endpoint_for(&opts)?;
                print!("{}", endpoint.profile().to_text());
                println!();
                print!("{}", endpoint.summary());
            } else {
                // Reuse the implicit profile's verbatim source mapping so
                // paths with spaces keep working.
                let graph =
                    protoobf::resolve_spec(profile_for(&opts)?.tx()).map_err(CliError::Run)?;
                print!("{}", protoobf::spec::to_text(&graph));
            }
        }
        "dot" => {
            // Profiles may be asymmetric; dot renders the tx half.
            let derivation = derivation_for(&opts)?;
            let codec = &derivation.tx;
            if codec.transform_count() == 0 {
                print!("{}", protoobf::core::dot::format_graph_to_dot(codec.plain()));
            } else {
                print!("{}", protoobf::core::dot::obf_graph_to_dot(codec.obf_graph()));
            }
        }
        "gen" => {
            // Code generation covers the tx half (run twice with swapped
            // halves of an asymmetric profile for both libraries).
            let derivation = derivation_for(&opts)?;
            let codec = &derivation.tx;
            let lib = generate(codec);
            let m = measure(&lib);
            eprintln!(
                "{} transformations; {} lines, {} structs, call graph {}x{}",
                codec.transform_count(),
                m.lines,
                m.structs,
                m.callgraph_size,
                m.callgraph_depth
            );
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, &lib.source)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
                None => print!("{}", lib.source),
            }
        }
        "demo" => {
            let derivation = derivation_for(&opts)?;
            let codec = &derivation.tx;
            let mut rng = rand::thread_rng();
            let msg = random_message(codec, &mut rng);
            // Reusable sessions over the compiled plan: the steady-state
            // encode/decode path a deployment would hold per connection.
            let mut serializer = codec.serializer();
            let mut parser = codec.parser();
            let mut wire = Vec::new();
            serializer.serialize_into(&msg, &mut wire).map_err(|e| e.to_string())?;
            println!(
                "plan: {} transformations, {} slots, {} recovery steps; wire: {} bytes",
                codec.transform_count(),
                codec.plan().slots(),
                codec.plan().recovery_steps(),
                wire.len()
            );
            for chunk in wire.chunks(16) {
                let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
                println!("  {}", hex.join(" "));
            }
            parser.parse_in_place(&wire).map_err(|e| format!("self-parse failed: {e}"))?;
            println!("round-trip: ok ({})", derivation.fingerprint);
        }
        "gateway" => {
            let listen = opts
                .listen
                .as_deref()
                .ok_or(CliError::Usage("gateway needs --listen ADDR".into()))?;
            let upstream = opts
                .upstream
                .as_deref()
                .ok_or(CliError::Usage("gateway needs --upstream ADDR".into()))?;
            let mode = match opts.mode.as_deref() {
                Some("encode") => GatewayMode::Encode,
                Some("decode") => GatewayMode::Decode,
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "--mode must be encode or decode, got {other:?}"
                    )));
                }
                None => return Err(CliError::Usage("gateway needs --mode encode|decode".into())),
            };
            let endpoint = endpoint_for(&opts)?;
            let mut gw =
                Gateway::from_endpoint(&endpoint, mode, upstream).map_err(|e| e.to_string())?;
            if let Some(cap) = opts.backpressure {
                gw = gw.with_outbound_cap(cap);
            }
            let listener =
                std::net::TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
            let cfg = loop_config(&opts);
            eprintln!(
                "{mode:?} gateway on {listen} → {upstream} ({} workers)\nfingerprint {}",
                cfg.workers,
                endpoint.fingerprint()
            );
            let telemetry = Arc::new(gw.telemetry());
            with_admin(opts.admin.as_deref(), &telemetry, |shutdown| {
                gw.serve(listener, &cfg, shutdown).map_err(|e| CliError::Run(e.to_string()))
            })?;
            print_summary("gateway done", &telemetry, opts.quiet);
        }
        "recv" => {
            let listen =
                opts.listen.as_deref().ok_or(CliError::Usage("recv needs --listen ADDR".into()))?;
            let endpoint = endpoint_for(&opts)?;
            // The responder side of the chain: parse the profile's tx
            // spec, answer on the rx spec — clear framing on both (the
            // decode gateway faces the obfuscated wire for us).
            let request_svc = endpoint.clear_tx_service();
            let reply_svc = endpoint.clear_rx_service();
            let metrics = Arc::new(Metrics::new());
            let mut registry = Telemetry::new(Arc::clone(&metrics));
            registry.register_service("request", request_svc);
            registry.register_service("reply", reply_svc);
            let telemetry = Arc::new(registry);
            let listener =
                std::net::TcpListener::bind(listen).map_err(|e| format!("bind {listen}: {e}"))?;
            let cfg = loop_config(&opts);
            if endpoint.is_symmetric() {
                eprintln!("echo server on {listen} ({} workers)", cfg.workers);
                with_admin(opts.admin.as_deref(), &telemetry, |shutdown| {
                    evloop::serve(listener, &cfg, shutdown, &metrics, |stream, peer| {
                        let echo =
                            Echo::new(stream, request_svc, &metrics).with_token(peer_token(&peer));
                        Ok(match opts.backpressure {
                            Some(cap) => echo.outbound_cap(cap),
                            None => echo,
                        })
                    })
                    .map_err(|e| CliError::Run(e.to_string()))
                })?;
            } else {
                eprintln!(
                    "responder on {listen} ({} workers): {} in, {} out",
                    cfg.workers,
                    endpoint.profile().tx(),
                    endpoint.profile().rx()
                );
                let seed = std::sync::atomic::AtomicU64::new(1);
                with_admin(opts.admin.as_deref(), &telemetry, |shutdown| {
                    evloop::serve(listener, &cfg, shutdown, &metrics, |stream, peer| {
                        let s = seed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let responder = Responder::new(stream, request_svc, reply_svc, s, &metrics)
                            .with_token(peer_token(&peer));
                        Ok(match opts.backpressure {
                            Some(cap) => responder.outbound_cap(cap),
                            None => responder,
                        })
                    })
                    .map_err(|e| CliError::Run(e.to_string()))
                })?;
            }
            print_summary("server done", &telemetry, opts.quiet);
        }
        "send" => {
            let connect = opts
                .connect
                .as_deref()
                .ok_or(CliError::Usage("send needs --connect ADDR".into()))?;
            let endpoint = endpoint_for(&opts)?;
            let tx_svc = endpoint.clear_tx_service();
            let rx_svc = endpoint.clear_rx_service();
            let tx_clear = tx_svc.codec();
            let rx_clear = rx_svc.codec();
            let metrics = Arc::new(Metrics::new());
            let mut registry = Telemetry::new(Arc::clone(&metrics));
            registry.register_service("tx_clear", tx_svc);
            registry.register_service("rx_clear", rx_svc);
            let telemetry = Arc::new(registry);
            let stream = std::net::TcpStream::connect(connect)
                .map_err(|e| format!("connect {connect}: {e}"))?;
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(60)))
                .map_err(|e| e.to_string())?;
            let mut writer = FrameWriter::new(tx_clear, &stream);
            let mut reader = FrameReader::new(rx_clear, &stream);
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed.unwrap_or(0));
            let symmetric = endpoint.is_symmetric();
            let mut bytes = 0usize;
            eprintln!("fingerprint {}", endpoint.fingerprint());
            with_admin(opts.admin.as_deref(), &telemetry, |_shutdown| {
                for i in 0..opts.count {
                    let msg = random_message(tx_clear, &mut rng);
                    // Identity serialization is deterministic: the bytes
                    // sent are the reference a symmetric echo must match
                    // byte-for-byte.
                    let serialize_t = metrics.stages.serialize.start();
                    let reference = tx_clear.serialize(&msg).map_err(|e| e.to_string())?;
                    metrics.stages.serialize.finish(serialize_t);
                    writer.send_raw(&reference).map_err(|e| e.to_string())?;
                    Metrics::add(&metrics.messages_out, 1);
                    Metrics::add(&metrics.bytes_out, (reference.len() + 4) as u64);
                    metrics.frame_bytes_out.record((reference.len() + 4) as u64);
                    let echoed = reader
                        .recv_raw()
                        .map_err(|e| e.to_string())?
                        .ok_or_else(|| format!("stream ended after {i} messages"))?;
                    Metrics::add(&metrics.messages_in, 1);
                    Metrics::add(&metrics.bytes_in, (echoed.len() + 4) as u64);
                    metrics.frame_bytes_in.record(echoed.len() as u64);
                    if symmetric {
                        if echoed != reference {
                            return Err(CliError::Run(format!(
                                "message {i}: echoed wire differs from reference"
                            )));
                        }
                    } else {
                        // Asymmetric chains answer in the rx grammar:
                        // verify the response parses as such.
                        let parse_t = metrics.stages.parse.start();
                        rx_clear
                            .parse(&echoed)
                            .map_err(|e| format!("message {i}: response does not parse: {e}"))?;
                        metrics.stages.parse.finish(parse_t);
                    }
                    bytes += reference.len() + 4;
                }
                Ok(())
            })?;
            println!(
                "{} messages ({} bytes framed) round-tripped {} through {connect}",
                opts.count,
                bytes,
                if symmetric { "byte-identical" } else { "with parsed responses" }
            );
            print_summary("client done", &telemetry, opts.quiet);
        }
        "tunnel" => {
            let endpoint = endpoint_for(&opts)?;
            // Like send/recv, tunnel endpoints speak clear framing: the
            // obfuscation gateways in between own the hostile wire. The
            // carrier slots are classified on the *plain* grammar, and the
            // gateways' transcode preserves plain values, so the covert
            // payload survives any level of obfuscation in the chain.
            let tx_svc = endpoint.clear_tx_service();
            let rx_svc = endpoint.clear_rx_service();
            let metrics = Arc::new(Metrics::new());
            let mut registry = Telemetry::new(Arc::clone(&metrics));
            registry.register_service("tx_clear", tx_svc);
            registry.register_service("rx_clear", rx_svc);
            let telemetry = Arc::new(registry);
            // Stdin feeds a bounded payload buffer from a detached thread;
            // the wake pipe turns payload arrival into socket readiness so
            // the epoll loop re-drives the session.
            let source = PayloadBuf::new();
            let (wake_rx, wake_tx) = wake_pair().map_err(|e| e.to_string())?;
            spawn_reader(std::io::stdin(), Arc::clone(&source), Some(wake_tx));
            match (opts.connect.as_deref(), opts.listen.as_deref()) {
                (Some(connect), None) => {
                    let stream = std::net::TcpStream::connect(connect)
                        .map_err(|e| format!("connect {connect}: {e}"))?;
                    stream.set_nonblocking(true).map_err(|e| e.to_string())?;
                    eprintln!("tunnel client → {connect}\nfingerprint {}", endpoint.fingerprint());
                    let stdout = std::io::stdout();
                    let mut session =
                        TunnelSession::new(stream, rx_svc, tx_svc, source, stdout, 1, &metrics)
                            .map_err(|e| e.to_string())?
                            .with_wake(wake_rx)
                            .exit_on_eof(opts.exit_on_eof);
                    if let Some(cap) = opts.backpressure {
                        session = session.outbound_cap(cap);
                    }
                    // A single client connection doesn't need the full
                    // event loop: a mini drive loop with a short nap on
                    // Idle keeps the binary simple and the socket hot.
                    with_admin(opts.admin.as_deref(), &telemetry, |_shutdown| loop {
                        match session.drive().map_err(|e| CliError::Run(e.to_string()))? {
                            evloop::Drive::Done => break Ok(()),
                            evloop::Drive::Progress => {}
                            evloop::Drive::Idle => {
                                std::thread::sleep(std::time::Duration::from_millis(1));
                            }
                        }
                    })?;
                    print_summary("tunnel client done", &telemetry, opts.quiet);
                }
                (None, Some(listen)) => {
                    let listener = std::net::TcpListener::bind(listen)
                        .map_err(|e| format!("bind {listen}: {e}"))?;
                    let mut cfg = loop_config(&opts);
                    // Stdin is one stream: by default serve exactly one
                    // tunnel, then exit (--accept-limit overrides).
                    if cfg.accept_limit.is_none() {
                        cfg.accept_limit = Some(1);
                    }
                    eprintln!(
                        "tunnel server on {listen} ({} workers)\nfingerprint {}",
                        cfg.workers,
                        endpoint.fingerprint()
                    );
                    // Only the first accepted session gets the stdin wake
                    // pipe (and with it, fresh local payload).
                    let wake_slot = std::sync::Mutex::new(Some(wake_rx));
                    let seed = std::sync::atomic::AtomicU64::new(2);
                    with_admin(opts.admin.as_deref(), &telemetry, |shutdown| {
                        evloop::serve(listener, &cfg, shutdown, &metrics, |stream, peer| {
                            let s = seed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let mut sess = TunnelSession::new(
                                stream,
                                tx_svc,
                                rx_svc,
                                Arc::clone(&source),
                                std::io::stdout(),
                                s,
                                &metrics,
                            )?
                            .exit_on_eof(opts.exit_on_eof)
                            .with_token(peer_token(&peer));
                            if let Some(w) = wake_slot.lock().unwrap().take() {
                                sess = sess.with_wake(w);
                            }
                            if let Some(cap) = opts.backpressure {
                                sess = sess.outbound_cap(cap);
                            }
                            Ok(sess)
                        })
                        .map_err(|e| CliError::Run(e.to_string()))
                    })?;
                    print_summary("tunnel server done", &telemetry, opts.quiet);
                }
                _ => {
                    return Err(CliError::Usage(
                        "tunnel needs exactly one of --connect ADDR or --listen ADDR".into(),
                    ));
                }
            }
        }
        "fuzz" => {
            let profile = profile_for(&opts)?;
            let derivation = derivation_for(&opts)?;
            // One entry point for the fast PR gate and the long stress
            // run: --cases wins, then PROTOOBF_FUZZ_CASES (the knob the
            // CI stress matrix already sets), then a fast default.
            let cases = opts
                .cases
                .or_else(|| std::env::var("PROTOOBF_FUZZ_CASES").ok().and_then(|v| v.parse().ok()))
                .unwrap_or(256);
            let corpus = opts.corpus.clone().unwrap_or_else(|| "tests/corpus".to_string());
            let cfg = FuzzConfig {
                cases,
                seed: profile.obf().rng_seed() ^ 0x0BF5_CA7E,
                ..FuzzConfig::default()
            };
            let mut legs = vec![("tx", &derivation.tx, profile.tx())];
            if let Some(rx) = &derivation.rx {
                legs.push(("rx", rx, profile.rx()));
            }
            let mut total = 0usize;
            for (leg, codec, src) in legs {
                let report = fuzz_codec(codec, &cfg);
                eprintln!(
                    "{leg} {}: {} executions ({} accepted, {} rejected), {} coverage \
                     signatures, {} divergence(s)",
                    codec.plain().name(),
                    report.executions,
                    report.accepted,
                    report.rejected,
                    report.signatures,
                    report.divergences.len()
                );
                for rep in &report.divergences {
                    let path = pin_reproducer(&corpus, src, profile.obf(), leg, rep)?;
                    eprintln!(
                        "  divergence ({} bytes, minimized from {}): {}\n  pinned {path}",
                        rep.wire.len(),
                        rep.original.len(),
                        rep.detail.lines().next().unwrap_or("")
                    );
                }
                total += report.divergences.len();
            }
            if total > 0 {
                return Err(CliError::Run(format!(
                    "{total} divergence(s) found — minimized reproducers pinned under {corpus}"
                )));
            }
            println!("fuzz: ok — {cases} cases per leg, no divergence");
        }
        "resilience" => {
            if let Some(spec) = &opts.spec_path {
                return Err(CliError::Usage(format!(
                    "resilience scores the builtin protocol suite and takes no \
                     specification (got {spec:?})"
                )));
            }
            let samples = opts.samples.unwrap_or(16);
            let max_level = opts.max_level.unwrap_or(3);
            let report = resilience::score_trajectory(max_level, samples, 0xD5C_0BF);
            for cell in &report.levels {
                eprintln!("{}", resilience::summarize(cell));
            }
            let json = resilience::export_json(&report);
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("wrote {path}");
                }
                None => print!("{json}"),
            }
        }
        other => return Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
    Ok(())
}

/// Writes a minimized reproducer into the corpus directory. When the
/// fuzzed leg is a builtin spec obfuscated with the full transformation
/// set, the file uses the regression-corpus name format
/// (`<proto>-l<level>-p<seed>-<desc>.bin`) so `tests/fuzz_differential.rs`
/// and `tests/transcode_differential.rs` replay it on every run; other
/// configurations (DSL files, restricted `allow` lists) can't be
/// reconstructed from the name alone and are pinned as `.repro` files
/// the harnesses ignore.
fn pin_reproducer(
    dir: &str,
    src: &SpecSource,
    obf: &ObfConfig,
    leg: &str,
    rep: &Reproducer,
) -> Result<String, CliError> {
    std::fs::create_dir_all(dir).map_err(|e| CliError::Run(format!("cannot create {dir}: {e}")))?;
    let tag = match src {
        SpecSource::Builtin(name) => match name.as_str() {
            "dns-query" => Some("dnsq"),
            "dns-response" => Some("dnsr"),
            "http-request" => Some("httpq"),
            "http-response" => Some("httpr"),
            "modbus-request" => Some("modq"),
            "modbus-response" => Some("modr"),
            _ => None,
        },
        SpecSource::File(_) => None,
    };
    let name = match tag {
        Some(tag) if obf.allowed == TransformKind::ALL => {
            format!("{tag}-l{}-p{}-fuzz{:08x}.bin", obf.level, obf.rng_seed(), rep.signature as u32)
        }
        _ => format!("fuzz-{leg}-{:08x}.repro", rep.signature as u32),
    };
    let path = format!("{dir}/{name}");
    std::fs::write(&path, &rep.wire)
        .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
    Ok(path)
}

/// Runs `body` with the optional admin scrape plane live next to it:
/// the listener is bound eagerly (a bad `--admin` address fails before
/// any traffic flows), [`serve_admin`] runs on a scoped thread over the
/// shared registry, and the shared shutdown flag is raised as soon as
/// the body returns so the scraper thread winds down with the data
/// plane.
fn with_admin<T>(
    admin: Option<&str>,
    telemetry: &Arc<Telemetry>,
    body: impl FnOnce(&AtomicBool) -> Result<T, CliError>,
) -> Result<T, CliError> {
    let listener = match admin {
        Some(a) => {
            let l = std::net::TcpListener::bind(a)
                .map_err(|e| CliError::Run(format!("bind admin {a}: {e}")))?;
            eprintln!("admin endpoint on {a} (/metrics /events /health)");
            Some(l)
        }
        None => None,
    };
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        if let Some(listener) = listener {
            let tel = Arc::clone(telemetry);
            let sd = &shutdown;
            scope.spawn(move || {
                if let Err(e) = serve_admin(listener, tel, sd) {
                    eprintln!("admin endpoint failed: {e}");
                }
            });
        }
        let result = body(&shutdown);
        shutdown.store(true, Ordering::Release);
        result
    })
}

/// The end-of-run telemetry report every networked subcommand prints
/// (unless `--quiet`).
fn print_summary(label: &str, telemetry: &Telemetry, quiet: bool) {
    if !quiet {
        eprintln!("{label}: {}", telemetry.summary());
    }
}

fn loop_config(opts: &Options) -> LoopConfig {
    let mut cfg = LoopConfig::default();
    if let Some(w) = opts.workers {
        cfg.workers = w.max(1);
    }
    cfg.accept_limit = opts.accept_limit;
    if let Some(burst) = opts.accept_burst {
        cfg.accept_burst = burst.max(1);
    }
    cfg
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("{}", usage(&msg));
            ExitCode::from(2)
        }
        Err(CliError::Run(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

//! The obfuscation-resilience trajectory: the PRE inference attack
//! ([`protoobf_pre::resilience`]) run against sampled traffic of the
//! builtin experiment protocols at increasing obfuscation levels.
//!
//! This is the security analogue of the perf trajectories the bench
//! suite exports: one attacker-success score per obfuscation level,
//! written as `BENCH_resilience.json` by `protoobf resilience` (and the
//! CI resilience job). The paper's claim (§VII-D) — spec-level
//! obfuscation defeats alignment/clustering-based PRE — becomes a
//! pinned, regression-checked curve: level 0 must score high for the
//! attacker, levels 1+ must score measurably lower.

use protoobf_core::sample::{random_message, random_message_pinned};
use protoobf_core::tunnel::{ChannelMap, TunnelEncoder};
use protoobf_core::{Codec, Obfuscator};
use protoobf_pre::resilience::{attack, AttackParams, AttackScore};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::protocols::{dns, http, modbus};
use crate::FormatGraph;

/// The builtin protocols sampled into every trajectory cell, by resolver
/// name (`builtin:NAME`).
pub const BUILTIN_PROTOCOLS: [&str; 6] = [
    "dns-query",
    "dns-response",
    "http-request",
    "http-response",
    "modbus-request",
    "modbus-response",
];

fn graph_of(name: &str) -> FormatGraph {
    match name {
        "dns-query" => dns::query_graph(),
        "dns-response" => dns::response_graph(),
        "http-request" => http::request_graph(),
        "http-response" => http::response_graph(),
        "modbus-request" => modbus::request_graph(),
        "modbus-response" => modbus::response_graph(),
        other => unreachable!("not a builtin protocol: {other}"),
    }
}

/// Samples `n` wires of realistic traffic for `codec`: a handful of
/// distinct application messages ("flows") serialized over and over,
/// each time with fresh serialization-time random material.
///
/// This redundancy is the attack's foothold and the paper's setting: an
/// analyst observes repeating application traffic. Under the identity
/// codec a repeated message re-serializes byte-identically, so
/// alignment finds it trivially; an obfuscated plan re-draws pads and
/// random shares per message, so the same application traffic stops
/// aligning — that collapse is the resilience signal.
pub fn sample_wires(codec: &Codec, n: usize, seed: u64) -> Vec<Vec<u8>> {
    let flows = (n / 4).clamp(1, 6);
    let bases: Vec<_> = (0..flows)
        .map(|v| {
            let mut rng = StdRng::seed_from_u64(seed ^ ((v as u64 + 1) << 32));
            random_message(codec, &mut rng)
        })
        .collect();
    (0..n)
        .map(|i| {
            codec
                .serialize_seeded(&bases[i % flows], seed ^ (i as u64).wrapping_mul(0x9E37_79B9))
                .expect("sampled messages serialize")
        })
        .collect()
}

/// Samples `n` wires of **fresh** cover traffic: every message is a new
/// draw (with the covert tunnel's carrier pins applied, so message
/// shapes match [`sample_tunnel_wires`] exactly), serialized with fresh
/// random material. The control arm of the tunnel-detectability
/// comparison: identical sampling, no payload in the carriers.
pub fn sample_cover_wires(codec: &Codec, n: usize, seed: u64) -> Vec<Vec<u8>> {
    let map = ChannelMap::analyze(codec);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let msg = random_message_pinned(codec, &mut rng, map.pins());
            codec
                .serialize_seeded(&msg, seed ^ (i as u64).wrapping_mul(0x9E37_79B9))
                .expect("sampled covers serialize")
        })
        .collect()
}

/// Samples `n` wires of **covert-tunnel** traffic: a random payload
/// stream chunked into the carrier slots of sampler-generated cover
/// messages ([`protoobf_core::tunnel::TunnelEncoder`]). The tunnel
/// preserves every carrier instance's sampled length and leaves cover
/// slots sampled, so against the PRE attacker this should be
/// indistinguishable from [`sample_cover_wires`] at the same level —
/// the claim `tests/resilience.rs` pins.
pub fn sample_tunnel_wires(codec: &Codec, n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut enc = TunnelEncoder::new(codec, seed).expect("builtin specs expose carrier slots");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x007A_77E1);
    (0..n)
        .map(|i| {
            // Keep payload pending so every cover actually carries data.
            if enc.pending_payload() < 512 {
                let chunk: Vec<u8> = (0..512).map(|_| rng.gen()).collect();
                enc.push(&chunk);
            }
            let frame = enc
                .next_cover()
                .expect("sampled covers reach carrier capacity")
                .expect("payload is pending");
            codec
                .serialize_seeded(&frame.message, seed ^ (i as u64).wrapping_mul(0x9E37_79B9))
                .expect("tunnel covers serialize")
        })
        .collect()
}

/// One cell of the trajectory: the graded attack at one level.
#[derive(Debug, Clone, Copy)]
pub struct LevelScore {
    /// Obfuscation level (0 = identity codecs).
    pub level: u32,
    /// The graded inference attack over the mixed builtin trace.
    pub attack: AttackScore,
}

/// The full trajectory.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// Wires sampled per builtin protocol per cell.
    pub samples_per_protocol: usize,
    /// One entry per level, ascending from 0.
    pub levels: Vec<LevelScore>,
}

/// Runs the attack for one level: every builtin protocol contributes
/// `samples_per_protocol` wires (obfuscated under a level-`level` plan
/// keyed per protocol), the analyst sees the mixed trace, and the
/// grading uses the protocol names as ground truth.
pub fn score_level(level: u32, samples_per_protocol: usize, seed: u64) -> LevelScore {
    score_mixed(level, samples_per_protocol, seed, sample_wires)
}

/// [`score_level`] with fresh (pinned, payload-free) cover traffic from
/// [`sample_cover_wires`] — the control arm of the tunnel comparison.
pub fn score_level_cover(level: u32, samples_per_protocol: usize, seed: u64) -> LevelScore {
    score_mixed(level, samples_per_protocol, seed, sample_cover_wires)
}

/// [`score_level`] with covert-tunnel traffic from
/// [`sample_tunnel_wires`]: every builtin protocol's wires carry a live
/// payload stream in their carrier slots.
pub fn score_level_tunnel(level: u32, samples_per_protocol: usize, seed: u64) -> LevelScore {
    score_mixed(level, samples_per_protocol, seed, sample_tunnel_wires)
}

fn score_mixed(
    level: u32,
    samples_per_protocol: usize,
    seed: u64,
    sampler: impl Fn(&Codec, usize, u64) -> Vec<Vec<u8>>,
) -> LevelScore {
    let mut wires: Vec<Vec<u8>> = Vec::new();
    let mut labels: Vec<&'static str> = Vec::new();
    for (pi, proto) in BUILTIN_PROTOCOLS.iter().enumerate() {
        let graph = graph_of(proto);
        let codec = if level == 0 {
            Codec::identity(&graph)
        } else {
            Obfuscator::new(&graph)
                .seed(seed ^ ((pi as u64 + 1) << 8) ^ u64::from(level))
                .max_per_node(level)
                .obfuscate()
                .expect("builtin specs obfuscate at every level")
        };
        wires.extend(sampler(&codec, samples_per_protocol, seed ^ (pi as u64 + 1)));
        labels.extend(std::iter::repeat_n(*proto, samples_per_protocol));
    }
    let refs: Vec<&[u8]> = wires.iter().map(Vec::as_slice).collect();
    LevelScore { level, attack: attack(&refs, &labels, &AttackParams::default()) }
}

/// Scores levels `0..=max_level` into a trajectory.
pub fn score_trajectory(
    max_level: u32,
    samples_per_protocol: usize,
    seed: u64,
) -> ResilienceReport {
    ResilienceReport {
        samples_per_protocol,
        levels: (0..=max_level).map(|l| score_level(l, samples_per_protocol, seed)).collect(),
    }
}

/// Renders the report in the same shape as the vendored criterion's
/// `PROTOOBF_BENCH_JSON` trajectories (`prefix` / `unix_time` /
/// `results` with one named entry per cell), so the CI artifact tooling
/// treats perf and resilience curves uniformly.
pub fn export_json(report: &ResilienceReport) -> String {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"prefix\": \"resilience\",\n");
    out.push_str(&format!("  \"unix_time\": {unix_time},\n"));
    out.push_str(&format!("  \"samples_per_protocol\": {},\n", report.samples_per_protocol));
    out.push_str("  \"results\": [\n");
    for (i, cell) in report.levels.iter().enumerate() {
        let a = &cell.attack;
        out.push_str(&format!(
            "    {{\"name\": \"resilience/level-{}\", \"level\": {}, \"score\": {:.6}, \
             \"ari\": {:.6}, \"purity\": {:.6}, \"static_fraction\": {:.6}, \
             \"mean_entropy\": {:.6}, \"random_fraction\": {:.6}, \
             \"clusters\": {}, \"types\": {}, \"messages\": {}}}{}\n",
            cell.level,
            cell.level,
            a.score,
            a.ari,
            a.purity,
            a.static_fraction,
            a.mean_entropy,
            a.random_fraction,
            a.clusters,
            a.types,
            a.messages,
            if i + 1 < report.levels.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One-line human summary of a cell, for the CLI table.
pub fn summarize(cell: &LevelScore) -> String {
    let a = &cell.attack;
    format!(
        "level {}: score {:.3} (ari {:+.3}, purity {:.3}, static {:.3}, entropy {:.2} bits, \
         random {:.3}, {} clusters / {} types)",
        cell.level,
        a.score,
        a.ari,
        a.purity,
        a.static_fraction,
        a.mean_entropy,
        a.random_fraction,
        a.clusters,
        a.types
    )
}

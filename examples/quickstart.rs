//! Quickstart: define a toy protocol in the specification DSL, obfuscate
//! it, and round-trip a message — the paper's figure-3 walk-through.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use protoobf::{spec::parse_spec, Codec, Obfuscator};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x} ")).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The message format specification (the paper's input S).
    let graph = parse_spec(
        r#"
        message Telemetry {
            u16 device_id;
            u16 length = len(payload);
            seq payload {
                u8 kind;
                optional reading if kind == 0x01 {
                    u32 timestamp;
                    u16 value;
                }
                optional alarm if kind == 0x02 {
                    u8 severity;
                    ascii text until "\n";
                }
            }
        }
    "#,
    )?;
    println!("specification: {} nodes in the format graph\n", graph.len());

    // 2. Build one message through the stable accessor interface.
    let build = |codec: &Codec| -> Result<Vec<u8>, Box<dyn std::error::Error>> {
        let mut msg = codec.message_seeded(1);
        msg.set_uint("device_id", 0x0A01)?;
        msg.set_uint("payload.kind", 1)?;
        msg.set_uint("payload.reading.timestamp", 1_700_000_000)?;
        msg.set_uint("payload.reading.value", 512)?;
        Ok(codec.serialize_seeded(&msg, 2)?)
    };

    // 3. Plain wire format (level 0).
    let plain = Codec::identity(&graph);
    let plain_wire = build(&plain)?;
    println!("plain wire      ({} bytes): {}", plain_wire.len(), hex(&plain_wire));

    // 4. Obfuscated wire formats: same accessor calls, different bytes.
    for level in 1..=3 {
        let codec = Obfuscator::new(&graph).seed(2024).max_per_node(level).obfuscate()?;
        let wire = build(&codec)?;
        println!(
            "level {level} wire    ({} bytes, {} transformations): {}",
            wire.len(),
            codec.transform_count(),
            hex(&wire)
        );
        // The receiver (same spec + seed) recovers the plain values.
        let back = codec.parse(&wire)?;
        assert_eq!(back.get_uint("device_id")?, 0x0A01);
        assert_eq!(back.get_uint("payload.reading.value")?, 512);
    }

    println!("\nall levels parsed back to the same plain field values ✓");
    Ok(())
}

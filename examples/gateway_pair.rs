//! The paper's deployment model, end to end on loopback: an unmodified
//! "client" and "server" speak the **clear** protocol, while everything
//! between the two obfuscation gateways crosses the wire obfuscated.
//!
//! ```text
//! client ──clear──▶ encode gw ──obfuscated──▶ decode gw ──clear──▶ echo server
//! ```
//!
//! Everything is configured by **two copies of one profile file** — the
//! single shared secret object. Each gateway independently derives its
//! whole stack from its copy ([`Profile::build`] via the standard
//! resolver) and the two derivations are verified identical by comparing
//! fingerprints *before* any traffic flows; a wrong key is caught right
//! there, not as garbage on the wire.
//!
//! ```sh
//! cargo run --example gateway_pair
//! ```

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

use protoobf::core::framing::{FrameReader, FrameWriter};
use protoobf::protocols::modbus::{self, Function};
use protoobf::transport::{evloop, Echo, Gateway, GatewayMode, LoopConfig, Metrics};
use protoobf::{Profile, ProfileExt};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// In a real deployment this is a file both sides hold a copy of.
const PROFILE_TEXT: &str = r#"
profile protoobf/1
spec builtin:modbus-request
key "gateway-pair demo secret"
level 2
"#;

const CLIENTS: usize = 8;
const MSGS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each side parses and builds its *own copy* of the profile.
    let encode_ep = Profile::parse(PROFILE_TEXT)?.build()?;
    let decode_ep = Profile::parse(PROFILE_TEXT)?.build()?;

    // The handshake a deployment performs out of band: compare the
    // derivation fingerprints before any traffic flows.
    assert_eq!(encode_ep.fingerprint(), decode_ep.fingerprint());
    let imposter = Profile::parse(PROFILE_TEXT)?.key("wrong secret").build()?;
    assert_ne!(
        encode_ep.fingerprint(),
        imposter.fingerprint(),
        "a key mismatch must be detectable by fingerprint comparison"
    );
    println!("fingerprints agree: {}", encode_ep.fingerprint());

    // Three listeners on ephemeral ports: echo server, decode gw, encode gw.
    let server_l = TcpListener::bind("127.0.0.1:0")?;
    let decode_l = TcpListener::bind("127.0.0.1:0")?;
    let encode_l = TcpListener::bind("127.0.0.1:0")?;
    let client_addr = encode_l.local_addr()?;

    let encode_gw =
        Gateway::from_endpoint(&encode_ep, GatewayMode::Encode, decode_l.local_addr()?)?;
    let decode_gw =
        Gateway::from_endpoint(&decode_ep, GatewayMode::Decode, server_l.local_addr()?)?;
    // Client and server never see the key: they use the clear (identity)
    // stack the endpoint derives from the same profile.
    let server_svc = decode_ep.clear_tx_service();
    let server_metrics = Metrics::new();

    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig::default();
    println!("chain: client → {client_addr} (clear) → obfuscated → echo server");

    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
        let loops = [
            scope.spawn(|| {
                evloop::serve(server_l, &cfg, &shutdown, &server_metrics, |s, _| {
                    Ok(Echo::new(s, server_svc, &server_metrics))
                })
            }),
            scope.spawn(|| decode_gw.serve(decode_l, &cfg, &shutdown)),
            scope.spawn(|| encode_gw.serve(encode_l, &cfg, &shutdown)),
        ];

        // Concurrent clear-protocol clients, oblivious to the obfuscation.
        std::thread::scope(|clients| {
            for t in 0..CLIENTS {
                let clear = encode_ep.clear_tx_service().codec();
                clients.spawn(move || {
                    let stream = TcpStream::connect(client_addr).expect("connect");
                    let mut writer = FrameWriter::new(clear, &stream);
                    let mut reader = FrameReader::new(clear, &stream);
                    let mut rng = StdRng::seed_from_u64(t as u64);
                    for i in 0..MSGS {
                        let f = Function::ALL[(t + i) % Function::ALL.len()];
                        let msg = modbus::build_request(clear, f, &mut rng);
                        let wire = clear.serialize(&msg).expect("serialize");
                        writer.send_raw(&wire).expect("send");
                        let echo = reader.recv_raw().expect("recv").expect("echo");
                        assert_eq!(echo, wire, "client {t}: echo must be byte-identical");
                    }
                });
            }
        });

        shutdown.store(true, Ordering::Relaxed);
        for l in loops {
            l.join().expect("loop thread")?;
        }
        Ok(())
    })
    .map_err(|e| -> Box<dyn std::error::Error> { e })?;

    let enc = encode_gw.metrics().snapshot();
    let dec = decode_gw.metrics().snapshot();
    println!("encode gateway: {enc}");
    println!("decode gateway: {dec}");
    println!(
        "\n{} clients × {} messages round-tripped byte-identical; the decode gateway \
         relayed {} messages and moved {} bytes across its sockets ✓",
        CLIENTS, MSGS, dec.messages_in, dec.bytes_in
    );
    Ok(())
}

//! Obfuscated Modbus/TCP client and server over an in-memory network.
//!
//! Both peers regenerate the same obfuscated library from the shared
//! specification and seed (the paper's deployment model: the generated
//! code "must be integrated within all the applications that
//! communicate"), then exchange every request type and its response.
//!
//! ```sh
//! cargo run --example modbus_obfuscation
//! ```

use std::sync::mpsc;
use std::thread;

use protoobf::protocols::modbus::{self, Function};
use protoobf::Obfuscator;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARED_SEED: u64 = 0xC0FFEE;
const LEVEL: u32 = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (to_server, server_rx) = mpsc::channel::<Vec<u8>>();
    let (to_client, client_rx) = mpsc::channel::<Vec<u8>>();

    // The server regenerates its own codecs from the shared spec + seed.
    let server = thread::spawn(move || -> Result<(), String> {
        let req_graph = modbus::request_graph();
        let resp_graph = modbus::response_graph();
        let req_codec = Obfuscator::new(&req_graph)
            .seed(SHARED_SEED)
            .max_per_node(LEVEL)
            .obfuscate()
            .map_err(|e| e.to_string())?;
        let resp_codec = Obfuscator::new(&resp_graph)
            .seed(SHARED_SEED + 1)
            .max_per_node(LEVEL)
            .obfuscate()
            .map_err(|e| e.to_string())?;
        let mut rng = StdRng::seed_from_u64(1);
        while let Ok(wire) = server_rx.recv() {
            let request = req_codec.parse(&wire).map_err(|e| e.to_string())?;
            let fc = request.get_uint("pdu.function").map_err(|e| e.to_string())?;
            let function = Function::ALL
                .into_iter()
                .find(|f| u64::from(f.code()) == fc)
                .ok_or_else(|| format!("unknown function {fc}"))?;
            println!(
                "server: fc={fc:#04x} tid={} ({} obfuscated bytes)",
                request.get_uint("transaction_id").map_err(|e| e.to_string())?,
                wire.len()
            );
            let response = modbus::build_response(&resp_codec, function, false, &mut rng);
            let bytes = resp_codec.serialize(&response).map_err(|e| e.to_string())?;
            to_client.send(bytes).map_err(|e| e.to_string())?;
        }
        Ok(())
    });

    // The client does the same, independently.
    let req_graph = modbus::request_graph();
    let resp_graph = modbus::response_graph();
    let req_codec =
        Obfuscator::new(&req_graph).seed(SHARED_SEED).max_per_node(LEVEL).obfuscate()?;
    let resp_codec =
        Obfuscator::new(&resp_graph).seed(SHARED_SEED + 1).max_per_node(LEVEL).obfuscate()?;
    println!(
        "client: regenerated library with {} request transformations\n",
        req_codec.transform_count()
    );

    let mut rng = StdRng::seed_from_u64(2);
    for function in Function::ALL {
        let request = modbus::build_request(&req_codec, function, &mut rng);
        to_server.send(req_codec.serialize(&request)?)?;
        let wire = client_rx.recv()?;
        let response = resp_codec.parse(&wire)?;
        let fc = response.get_uint("pdu.function")?;
        assert_eq!(fc, u64::from(function.code()), "response echoes the function code");
        println!("client: {function:?} answered (fc={fc:#04x})");
    }
    drop(to_server);
    server.join().expect("server thread").map_err(|e| e.to_string())?;

    println!("\nall eight function codes exchanged over the obfuscated protocol ✓");
    Ok(())
}

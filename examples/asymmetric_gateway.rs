//! An **asymmetric** gateway chain: one connection, two grammars. The
//! initiator sends DNS *queries* while the responder answers with DNS
//! *responses* — a different spec per direction, the shape of every real
//! request/response protocol. One profile file with distinct `tx`/`rx`
//! halves drives all four stacks on both gateways:
//!
//! ```text
//!        queries ▶                 obf queries ▶                queries ▶
//! client ────────── encode gateway ───────────── decode gateway ───────── server
//!        ◀ responses              ◀ obf responses             ◀ responses
//! ```
//!
//! The example verifies the relay is **byte-identical** in both
//! directions: every query arrives at the server exactly as the client
//! framed it, every response arrives at the client exactly as the server
//! framed it — the gateways in between saw only the obfuscated grammars.
//!
//! ```sh
//! cargo run --example asymmetric_gateway
//! ```

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

use protoobf::core::framing::{FrameReader, FrameWriter};
use protoobf::core::sample::random_message;
use protoobf::transport::{Gateway, GatewayMode, LoopConfig};
use protoobf::{Profile, ProfileExt};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PROFILE_TEXT: &str = r#"
profile protoobf/1
tx builtin:dns-query
rx builtin:dns-response
key "asymmetric demo secret"
level 2
"#;

const MSGS: usize = 32;

/// Raw length-prefixed frame bodies, in order, as one side saw them.
type Frames = Vec<Vec<u8>>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let encode_ep = Profile::parse(PROFILE_TEXT)?.build()?;
    let decode_ep = Profile::parse(PROFILE_TEXT)?.build()?;
    assert_eq!(encode_ep.fingerprint(), decode_ep.fingerprint());
    println!("fingerprints agree: {}", encode_ep.fingerprint());
    println!("tx grammar: {} / rx grammar: {}", encode_ep.profile().tx(), encode_ep.profile().rx());

    let server_l = TcpListener::bind("127.0.0.1:0")?;
    let decode_l = TcpListener::bind("127.0.0.1:0")?;
    let encode_l = TcpListener::bind("127.0.0.1:0")?;
    let client_addr = encode_l.local_addr()?;

    let encode_gw =
        Gateway::from_endpoint(&encode_ep, GatewayMode::Encode, decode_l.local_addr()?)?;
    let decode_gw =
        Gateway::from_endpoint(&decode_ep, GatewayMode::Decode, server_l.local_addr()?)?;

    let shutdown = AtomicBool::new(false);
    let cfg = LoopConfig::default();

    let (client_view, server_view) =
        std::thread::scope(|scope| -> Result<_, Box<dyn std::error::Error + Send + Sync>> {
            let loops = [
                scope.spawn(|| decode_gw.serve(decode_l, &cfg, &shutdown)),
                scope.spawn(|| encode_gw.serve(encode_l, &cfg, &shutdown)),
            ];

            // The "real server": receives clear queries, answers with clear
            // responses, and records the raw frames it saw/sent.
            let server = scope.spawn(|| -> std::io::Result<(Frames, Frames)> {
                let query_codec = decode_ep.clear_tx_service().codec();
                let response_codec = decode_ep.clear_rx_service().codec();
                let (stream, _) = server_l.accept()?;
                let mut reader = FrameReader::new(query_codec, &stream);
                let mut writer = FrameWriter::new(response_codec, &stream);
                let mut rng = StdRng::seed_from_u64(7);
                let (mut received, mut sent) = (Vec::new(), Vec::new());
                for _ in 0..MSGS {
                    let query = reader.recv_raw().expect("frame").expect("query");
                    query_codec.parse(&query).expect("query parses");
                    received.push(query);
                    let reply = random_message(response_codec, &mut rng);
                    let wire = response_codec.serialize(&reply).expect("serialize response");
                    writer.send_raw(&wire).expect("send frame");
                    sent.push(wire);
                }
                Ok((received, sent))
            });

            // The client: sends clear queries, records the raw frames it
            // framed and the responses it got back.
            let client = scope.spawn(|| -> std::io::Result<(Frames, Frames)> {
                let query_codec = encode_ep.clear_tx_service().codec();
                let response_codec = encode_ep.clear_rx_service().codec();
                let stream = TcpStream::connect(client_addr)?;
                let mut writer = FrameWriter::new(query_codec, &stream);
                let mut reader = FrameReader::new(response_codec, &stream);
                let mut rng = StdRng::seed_from_u64(3);
                let (mut sent, mut received) = (Vec::new(), Vec::new());
                for _ in 0..MSGS {
                    let query = random_message(query_codec, &mut rng);
                    let wire = query_codec.serialize(&query).expect("serialize query");
                    writer.send_raw(&wire).expect("send frame");
                    sent.push(wire);
                    let response = reader.recv_raw().expect("frame").expect("response");
                    response_codec.parse(&response).expect("response parses");
                    received.push(response);
                }
                Ok((sent, received))
            });

            let client_view = client.join().expect("client thread")?;
            let server_view = server.join().expect("server thread")?;
            shutdown.store(true, Ordering::Relaxed);
            for l in loops {
                l.join().expect("loop thread")?;
            }
            Ok((client_view, server_view))
        })
        .map_err(|e| -> Box<dyn std::error::Error> { e })?;

    let (client_sent, client_received) = client_view;
    let (server_received, server_sent) = server_view;
    assert_eq!(client_sent, server_received, "queries must relay byte-identical");
    assert_eq!(server_sent, client_received, "responses must relay byte-identical");
    println!(
        "{MSGS} queries and {MSGS} responses relayed byte-identical across distinct \
         per-direction grammars ✓"
    );
    println!("encode gateway: {}", encode_gw.metrics().snapshot());
    println!("decode gateway: {}", decode_gw.metrics().snapshot());
    Ok(())
}

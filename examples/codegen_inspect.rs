//! Inspect the generated C library and its potency metrics — the artifact
//! the paper measures in §VII-B/C.
//!
//! ```sh
//! cargo run --example codegen_inspect            # summary + excerpt
//! PROTOOBF_DUMP=1 cargo run --example codegen_inspect   # full C source
//! ```

use protoobf::codegen::{generate, measure};
use protoobf::protocols::modbus;
use protoobf::{Codec, Obfuscator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = modbus::request_graph();

    let plain_lib = generate(&Codec::identity(&graph));
    let base = measure(&plain_lib);
    println!(
        "plain library:      {:>6} lines, {:>3} structs, call graph {}x{}",
        base.lines, base.structs, base.callgraph_size, base.callgraph_depth
    );

    for level in 1..=4u32 {
        let codec = Obfuscator::new(&graph).seed(9).max_per_node(level).obfuscate()?;
        let lib = generate(&codec);
        let m = measure(&lib);
        let n = m.normalized(&base);
        println!(
            "level {level} library:    {:>6} lines, {:>3} structs, call graph {}x{}  \
             (x{:.1} lines, x{:.1} structs, x{:.1} cg-size, x{:.1} cg-depth; {} transforms)",
            m.lines,
            m.structs,
            m.callgraph_size,
            m.callgraph_depth,
            n.lines,
            n.structs,
            n.callgraph_size,
            n.callgraph_depth,
            codec.transform_count()
        );
    }

    // Show the flavor of the generated artifact.
    let codec = Obfuscator::new(&graph).seed(9).max_per_node(1).obfuscate()?;
    let lib = generate(&codec);
    if std::env::var("PROTOOBF_DUMP").is_ok() {
        println!("\n{}", lib.source);
    } else {
        println!("\n— generated C excerpt (level 1, first 40 lines; PROTOOBF_DUMP=1 for all) —");
        for line in lib.source.lines().take(40) {
            println!("{line}");
        }
        println!("…");
        println!("parse entry: {}", lib.parse_entry);
        println!("serialize entry: {}", lib.serialize_entry);
    }
    Ok(())
}

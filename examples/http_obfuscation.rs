//! HTTP obfuscation and the stable accessor interface.
//!
//! Demonstrates the paper's §VI property: the application code that builds
//! messages is *identical* for every obfuscation plan — regenerating the
//! library with a new seed changes the wire format without touching the
//! core application.
//!
//! ```sh
//! cargo run --example http_obfuscation
//! ```

use protoobf::protocols::http;
use protoobf::{Codec, Obfuscator};

/// The "core application": builds the same logical request against any
/// codec. This function never changes when the obfuscation plan does.
fn core_application(codec: &Codec) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let mut msg = codec.message_seeded(7);
    msg.set_str("method", "POST")?;
    msg.set_str("uri", "/api/v1/items")?;
    msg.set_str("version", "HTTP/1.1")?;
    msg.set_str("headers[0].name", "Host")?;
    msg.set_str("headers[0].value", "example.org")?;
    msg.set_str("headers[1].name", "Content-Type")?;
    msg.set_str("headers[1].value", "application/json")?;
    msg.set("body.content", br#"{"item":42}"#.as_slice())?;
    Ok(codec.serialize_seeded(&msg, 3)?)
}

fn printable(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|&b| {
            if (0x20..0x7f).contains(&b) {
                (b as char).to_string()
            } else {
                format!("\\x{b:02x}")
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = http::request_graph();

    let plain = Codec::identity(&graph);
    println!("— plain wire —");
    println!("{}\n", printable(&core_application(&plain)?));

    // Regenerate the protocol twice, as the paper recommends doing "at
    // regular intervals" to invalidate any reverse-engineering progress.
    for (label, seed) in [("version A", 11u64), ("version B", 77u64)] {
        let codec = Obfuscator::new(&graph).seed(seed).max_per_node(2).obfuscate()?;
        let wire = core_application(&codec)?;
        println!("— obfuscated {} ({} transformations) —", label, codec.transform_count());
        println!("{}\n", printable(&wire));

        let back = codec.parse(&wire)?;
        assert_eq!(back.get_string("method")?, "POST");
        assert_eq!(back.get_string("headers[0].value")?, "example.org");
        assert_eq!(back.get_string("body.content")?, r#"{"item":42}"#);
    }

    println!("same core application, three wire dialects, identical plain values ✓");
    Ok(())
}

//! Obfuscated Modbus over a real TCP loopback connection.
//!
//! Uses the framing layer (`protoobf::core::framing`) to delimit
//! obfuscated messages on the stream — the deployment shape the paper's
//! framework targets (generated library linked into both communicating
//! applications).
//!
//! ```sh
//! cargo run --example tcp_framing
//! ```

use std::net::{TcpListener, TcpStream};
use std::thread;

use protoobf::core::framing::{FrameReader, FrameWriter};
use protoobf::protocols::modbus::{self, Function};
use protoobf::Obfuscator;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARED_SEED: u64 = 0x7EA;
const LEVEL: u32 = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    println!("server listening on {addr}");

    let server = thread::spawn(move || -> Result<usize, String> {
        let req_graph = modbus::request_graph();
        let resp_graph = modbus::response_graph();
        let req_codec = Obfuscator::new(&req_graph)
            .seed(SHARED_SEED)
            .max_per_node(LEVEL)
            .obfuscate()
            .map_err(|e| e.to_string())?;
        let resp_codec = Obfuscator::new(&resp_graph)
            .seed(SHARED_SEED + 1)
            .max_per_node(LEVEL)
            .obfuscate()
            .map_err(|e| e.to_string())?;
        let (stream, peer) = listener.accept().map_err(|e| e.to_string())?;
        println!("server: connection from {peer}");
        let mut reader = FrameReader::new(&req_codec, &stream);
        let mut writer = FrameWriter::new(&resp_codec, &stream);
        let mut rng = StdRng::seed_from_u64(1);
        let mut served = 0usize;
        while let Some(request) = reader.recv().map_err(|e| e.to_string())? {
            let fc = request.get_uint("pdu.function").map_err(|e| e.to_string())?;
            let function = Function::ALL
                .into_iter()
                .find(|f| u64::from(f.code()) == fc)
                .ok_or_else(|| format!("unknown function {fc}"))?;
            let response = modbus::build_response(&resp_codec, function, false, &mut rng);
            writer.send(&response).map_err(|e| e.to_string())?;
            served += 1;
        }
        Ok(served)
    });

    // Client side: independent regeneration of the same codecs.
    let req_graph = modbus::request_graph();
    let resp_graph = modbus::response_graph();
    let req_codec =
        Obfuscator::new(&req_graph).seed(SHARED_SEED).max_per_node(LEVEL).obfuscate()?;
    let resp_codec =
        Obfuscator::new(&resp_graph).seed(SHARED_SEED + 1).max_per_node(LEVEL).obfuscate()?;

    let stream = TcpStream::connect(addr)?;
    let mut writer = FrameWriter::new(&req_codec, &stream);
    let mut reader = FrameReader::new(&resp_codec, &stream);
    let mut rng = StdRng::seed_from_u64(2);
    for function in Function::ALL {
        let request = modbus::build_request(&req_codec, function, &mut rng);
        writer.send(&request)?;
        let response = reader.recv()?.expect("server answers");
        assert_eq!(response.get_uint("pdu.function")?, u64::from(function.code()));
        println!("client: {function:?} ok");
    }
    drop(writer);
    stream.shutdown(std::net::Shutdown::Write)?;
    let served = server.join().expect("server thread")?;
    println!("\nserver handled {served} obfuscated requests over TCP ✓");
    Ok(())
}

//! A reverse-engineering attack against plain and obfuscated traces — the
//! paper's §VII-D resilience assessment as a runnable demo.
//!
//! The "analyst" is the alignment-based toolkit of `protoobf-pre`
//! (Netzob-family algorithms). Against the plain Modbus trace it recovers
//! clusters and a field structure; against the obfuscated trace the
//! recovered structure collapses.
//!
//! ```sh
//! cargo run --release --example pre_attack
//! ```

use protoobf::pre::align::{similarity_matrix, ScoreParams};
use protoobf::pre::cluster::upgma;
use protoobf::pre::infer::{multiple_alignment, InferredField};
use protoobf::pre::score::{adjusted_rand_index, purity};
use protoobf::protocols::{corpus, modbus};
use protoobf::{Codec, Obfuscator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn describe(fields: &[InferredField]) -> String {
    fields
        .iter()
        .map(|f| match f {
            InferredField::Static(bytes) => format!("const{bytes:02x?}"),
            InferredField::Variable { min_len, max_len } if min_len == max_len => {
                format!("var[{min_len}]")
            }
            InferredField::Variable { min_len, max_len } => format!("var[{min_len}..{max_len}]"),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn attack(name: &str, req: &Codec, resp: &Codec) {
    let functions = [
        modbus::Function::ReadCoils,
        modbus::Function::ReadHoldingRegisters,
        modbus::Function::WriteSingleRegister,
        modbus::Function::WriteMultipleRegisters,
    ];
    let mut rng = StdRng::seed_from_u64(42);
    let trace = corpus::modbus_trace(req, resp, &functions, 8, &mut rng);
    let msgs: Vec<&[u8]> = trace.iter().map(|s| s.wire.as_slice()).collect();
    let labels: Vec<&str> = trace.iter().map(|s| s.label.as_str()).collect();

    let sim = similarity_matrix(&msgs, ScoreParams::default());
    let clusters = upgma(&sim, 0.55);
    println!("=== {name} ===");
    println!(
        "classification: {} clusters for 8 true types, purity {:.2}, ARI {:.2}",
        clusters.len(),
        purity(&clusters, &labels),
        adjusted_rand_index(&clusters, &labels)
    );

    // Format inference on the FC3 request group (the paper's expert
    // recovered "the exact format" of these for the plain protocol).
    let group: Vec<&[u8]> =
        trace.iter().filter(|s| s.label == "req:03").map(|s| s.wire.as_slice()).collect();
    let profile = multiple_alignment(&group, ScoreParams::default());
    println!("FC3 request inference: {:.0}% static structure", profile.static_fraction() * 100.0);
    println!("inferred format: {}\n", describe(&profile.fields()));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let req_graph = modbus::request_graph();
    let resp_graph = modbus::response_graph();

    attack("plain Modbus trace", &Codec::identity(&req_graph), &Codec::identity(&resp_graph));

    for level in [1u32, 2] {
        let req = Obfuscator::new(&req_graph)
            .seed(5 + u64::from(level))
            .max_per_node(level)
            .obfuscate()?;
        let resp = Obfuscator::new(&resp_graph)
            .seed(55 + u64::from(level))
            .max_per_node(level)
            .obfuscate()?;
        attack(&format!("obfuscated Modbus trace (level {level})"), &req, &resp);
    }

    println!("reading: the plain trace exposes the MBAP header and function");
    println!("codes as static fields; under obfuscation the inferred structure");
    println!("collapses into wide variable runs — the paper's expert story.");
    Ok(())
}

//! DNS obfuscation: nested per-element length prefixes and constant header
//! fields under transformation.
//!
//! DNS names are repetitions of length-prefixed labels ended by a zero
//! byte — the shape PRE tools model well. Under obfuscation the label
//! structure, header constants and the terminator all disappear from the
//! wire, while the resolver-facing accessor API never changes.
//!
//! ```sh
//! cargo run --example dns_obfuscation
//! ```

use protoobf::protocols::dns;
use protoobf::{Codec, Obfuscator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(
            |&b| {
                if (0x21..0x7f).contains(&b) {
                    format!(" {}", b as char)
                } else {
                    format!("{b:02x}")
                }
            },
        )
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = dns::query_graph();
    let mut rng = StdRng::seed_from_u64(4);

    let plain = Codec::identity(&graph);
    let query = dns::build_query(&plain, &mut rng);
    let host: Vec<String> = (0..query.element_count("questions[0].qname"))
        .map(|i| query.get_string(&format!("questions[0].qname[{i}].label")).unwrap())
        .collect();
    println!("query for {:?}:", host.join("."));
    println!("plain   : {}", hex(&plain.serialize_seeded(&query, 1)?));

    for level in [1u32, 2] {
        let codec = Obfuscator::new(&graph).seed(99).max_per_node(level).obfuscate()?;
        let msg = dns::build_query(&codec, &mut StdRng::seed_from_u64(4));
        let wire = codec.serialize_seeded(&msg, 1)?;
        println!("level {level} : {}", hex(&wire));
        let back = codec.parse(&wire)?;
        assert_eq!(back.get_string("questions[0].qname[0].label")?, host[0]);
        if level == 2 {
            println!("\nplan at level 2:\n{}", codec.plan_summary());
        }
    }

    println!("label structure recovered identically at every level ✓");
    Ok(())
}

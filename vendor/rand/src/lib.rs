//! Vendored, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses. The build environment has no network access, so the
//! real crate cannot be fetched; this module reimplements the small API
//! surface the code relies on (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, `seq::SliceRandom`, `random`,
//! `thread_rng`) on top of a splitmix64/xoshiro-style generator.
//!
//! The streams differ from upstream `rand`, which is fine for this
//! workspace: both communicating peers derive their codec from the same
//! binary, and no test asserts upstream-exact random values.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator seeded from ambient entropy (time + a counter).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

/// Types samplable from uniform bits (the `Standard` distribution of the
/// real crate, flattened into one trait).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for char {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + (rng.next_u64() % 95) as u8) as char
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the output type so
/// the element type of a range literal is inferred from the call site, as
/// with the real crate.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Maps a uniform `u64` onto `[0, span)`. Multiply-shift reduction keeps
/// the modulo bias negligible for the span sizes used here.
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// High-level convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }

    /// Fills a byte slice (mirror of `RngCore::fill_bytes`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: splitmix64-expanded seed
    /// driving xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Per-call generator handed out by [`super::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Slice helpers (the `rand::seq::SliceRandom` subset used here).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random element choice and in-place shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

use std::sync::atomic::{AtomicU64, Ordering};

static ENTROPY_COUNTER: AtomicU64 = AtomicU64::new(0);

fn entropy_seed() -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let c = ENTROPY_COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    t ^ c.rotate_left(32) ^ (std::process::id() as u64).rotate_left(48)
}

/// One ambient-entropy draw of any [`Standard`] type.
pub fn random<T: Standard>() -> T {
    use rngs::StdRng;
    let mut rng = StdRng::seed_from_u64(entropy_seed());
    T::sample(&mut rng)
}

/// An ambient-entropy generator (fresh stream per call).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(entropy_seed()))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = r.gen_range(64..=192);
            assert!((64..=192).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

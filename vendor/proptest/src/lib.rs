//! Vendored, dependency-free stand-in for the parts of `proptest` this
//! workspace uses. The build environment has no network access, so the
//! real crate cannot be fetched.
//!
//! Supported surface: the [`proptest!`] macro with `#![proptest_config]`,
//! [`any`], integer-range strategies, regex-subset string strategies,
//! tuples, [`collection::vec`], [`option::of`], and the
//! `prop_assert*`/`prop_assume!` macros. There is **no shrinking**: a
//! failing case reports its generated inputs and seed instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure signal of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the case is a counterexample.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; resample.
    Reject(String),
}

/// Runner configuration (vendored subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a default "anything" strategy (vendored `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                // Mix uniform values with boundary-ish small/large ones.
                match rng.gen_range(0..8u32) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => 1 as $t,
                    _ => rng.gen::<$t>(),
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        if rng.gen_bool(0.85) {
            // Printable ASCII keeps failures readable.
            (0x20u8 + rng.gen_range(0..95u8)) as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                    return c;
                }
            }
        }
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The default strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        regex_sample(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S>(S);

    /// `None` about a third of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0..3u32) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// regex-subset string generation
// ---------------------------------------------------------------------------

enum Atom {
    Class(Vec<(char, char)>),
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parses the pattern subset used by the workspace's tests: literals,
/// character classes with ranges (`[a-z0-9_]`), and `{m}`/`{m,n}`/`?`/`*`/
/// `+` quantifiers.
///
/// # Panics
///
/// Panics on unsupported constructs, so an unsupported pattern fails loudly
/// instead of silently generating wrong data.
fn regex_parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex construct {:?} in pattern {pattern:?}", chars[i])
            }
            '.' => {
                i += 1;
                // Any char except newline; printable ASCII keeps generated
                // counterexamples readable.
                Atom::Class(vec![(' ', '~')])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("quantifier lower bound"),
                            hi.trim().parse().expect("quantifier upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        out.push(Piece { atom, min, max });
    }
    out
}

fn regex_sample(pattern: &str, rng: &mut StdRng) -> String {
    let pieces = regex_parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = rng.gen_range(p.min..=p.max);
        for _ in 0..n {
            match &p.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    out.push(
                        char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                            .expect("class ranges stay in valid scalar space"),
                    );
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// runner
// ---------------------------------------------------------------------------

const MAX_REJECTS: u32 = 200;

fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drives one property: `cases` samples, resampling on `prop_assume!`
/// rejection, panicking with the generated inputs on failure.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> (Result<(), TestCaseError>, String),
{
    let base = fnv(name);
    let mut rejects = 0u32;
    let mut i = 0u32;
    while i < config.cases {
        let seed = base ^ (u64::from(i) << 32) ^ u64::from(rejects);
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            (Ok(()), _) => {
                i += 1;
                rejects = 0;
            }
            (Err(TestCaseError::Reject(_)), _) => {
                rejects += 1;
                assert!(rejects < MAX_REJECTS, "proptest {name}: too many prop_assume! rejections");
            }
            (Err(TestCaseError::Fail(msg)), inputs) => {
                panic!(
                    "proptest {name} failed at case {i} (seed {seed:#x})\n  {msg}\n  inputs: {inputs}"
                );
            }
        }
    }
}

/// Defines property tests over generated inputs (vendored form of the real
/// macro; no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(config, stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __pt_rng);)+
                    let __pt_inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", &$arg));
                        )+
                        s
                    };
                    let mut __pt_body = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    (__pt_body(), __pt_inputs)
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Rejects the current inputs, resampling without counting the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Common imports for test modules.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{any, Any, ArbitraryValue, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = regex_sample("[a-z]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = regex_sample("[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!t.is_empty() && t.len() <= 7);
            assert!(t.chars().next().unwrap().is_ascii_lowercase());
            assert!(t.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_samples_and_asserts(
            x in 0u64..100,
            v in collection::vec(any::<u8>(), 0..10),
            o in option::of(0usize..5),
            t in (0u32..4, "[a-z]{1,3}"),
        ) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 10);
            if let Some(i) = o {
                prop_assert!(i < 5);
            }
            prop_assert!(t.0 < 4);
            prop_assert_eq!(t.1.len(), t.1.chars().count());
        }

        #[test]
        fn assume_rejects_and_resamples(a in 0u32..4, b in 0u32..4) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }
}

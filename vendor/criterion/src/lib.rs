//! Vendored, dependency-free stand-in for the parts of `criterion` this
//! workspace uses. The build environment has no network access, so the
//! real crate cannot be fetched.
//!
//! The harness is deliberately simple: per benchmark it warms up, picks an
//! iteration count targeting a fixed measurement window, runs a few
//! samples, and reports the median time per iteration (plus bytes/second
//! throughput when [`Throughput::Bytes`] is set on the group). Numbers are
//! comparable within one machine and one run, which is all the workspace's
//! plan-vs-interpreter and level-vs-level comparisons need.

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared measurement throughput of a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter display value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    /// An id that is only a parameter display value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
}

const TARGET_SAMPLE: Duration = Duration::from_millis(60);
const SAMPLES: usize = 7;

impl Bencher {
    /// Measures `f`, recording the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & calibration: how many calls fit the target window?
        let start = Instant::now();
        let mut calls = 0u64;
        while start.elapsed() < Duration::from_millis(15) {
            black_box(f());
            calls += 1;
            if calls >= 1_000_000 {
                break;
            }
        }
        let per_call = start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
        let iters =
            ((TARGET_SAMPLE.as_nanos() as f64 / per_call.max(1.0)) as u64).clamp(1, 10_000_000);

        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<48} time: [{:>10}]", format_time(ns));
    match throughput {
        Some(Throughput::Bytes(b)) => {
            let bytes_per_sec = b as f64 / (ns / 1e9);
            line.push_str(&format!("   thrpt: [{:.2} MiB/s]", bytes_per_sec / (1024.0 * 1024.0)));
        }
        Some(Throughput::Elements(e)) => {
            let elems_per_sec = e as f64 / (ns / 1e9);
            line.push_str(&format!("   thrpt: [{elems_per_sec:.0} elem/s]"));
        }
        None => {}
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the declared throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the vendored harness has a fixed sample
    /// count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the vendored harness auto-sizes its
    /// measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.ns_per_iter, self.throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.ns_per_iter, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }
}

/// Groups benchmark functions under one runner (vendored form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Vendored, dependency-free stand-in for the parts of `criterion` this
//! workspace uses. The build environment has no network access, so the
//! real crate cannot be fetched.
//!
//! The harness is deliberately simple: per benchmark it warms up, picks an
//! iteration count targeting a fixed measurement window, runs a few
//! samples, and reports the min/median/max time per iteration (plus
//! bytes/second throughput when [`Throughput::Bytes`] is set on the
//! group). Numbers are comparable within one machine and one run, which is
//! all the workspace's plan-vs-interpreter and level-vs-level comparisons
//! need. Results accumulate on the [`Criterion`] instance and can be
//! dumped as a JSON trajectory file with [`Criterion::export_json`] (used
//! by the `service` bench group to emit `BENCH_service.json`).

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared measurement throughput of a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter display value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    /// An id that is only a parameter display value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing distribution of one benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample, nanoseconds per iteration.
    pub median_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    /// Sample distribution, filled by `iter`.
    stats: Stats,
}

const TARGET_SAMPLE: Duration = Duration::from_millis(60);
const SAMPLES: usize = 7;

impl Bencher {
    /// Measures `f`, recording the min/median/max time per call across
    /// the sample windows.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & calibration: how many calls fit the target window?
        let start = Instant::now();
        let mut calls = 0u64;
        while start.elapsed() < Duration::from_millis(15) {
            black_box(f());
            calls += 1;
            if calls >= 1_000_000 {
                break;
            }
        }
        let per_call = start.elapsed().as_nanos() as f64 / calls.max(1) as f64;
        let iters =
            ((TARGET_SAMPLE.as_nanos() as f64 / per_call.max(1.0)) as u64).clamp(1, 10_000_000);

        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.stats = Stats {
            min_ns: samples[0],
            median_ns: samples[samples.len() / 2],
            max_ns: samples[samples.len() - 1],
        };
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

fn report(name: &str, stats: Stats, throughput: Option<Throughput>) {
    let mut line = format!(
        "{name:<48} time: [{:>10} {:>10} {:>10}]",
        format_time(stats.min_ns),
        format_time(stats.median_ns),
        format_time(stats.max_ns)
    );
    match throughput {
        Some(Throughput::Bytes(b)) => {
            let bytes_per_sec = b as f64 / (stats.median_ns / 1e9);
            line.push_str(&format!("   thrpt: [{:.2} MiB/s]", bytes_per_sec / (1024.0 * 1024.0)));
        }
        Some(Throughput::Elements(e)) => {
            let elems_per_sec = e as f64 / (stats.median_ns / 1e9);
            line.push_str(&format!("   thrpt: [{elems_per_sec:.0} elem/s]"));
        }
        None => {}
    }
    println!("{line}");
}

/// One finished benchmark, retained for [`Criterion::export_json`].
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name (`group/function/parameter`).
    pub name: String,
    /// Timing distribution.
    pub stats: Stats,
    /// Declared throughput, if the group set one.
    pub throughput: Option<Throughput>,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the declared throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the vendored harness has a fixed sample
    /// count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the vendored harness auto-sizes its
    /// measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value (skipped when the
    /// command-line filter does not match its full name).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&name) {
            return self;
        }
        let mut b = Bencher { stats: Stats::default() };
        f(&mut b, input);
        self.criterion.record(name, b.stats, self.throughput);
        self
    }

    /// Runs one benchmark (skipped when the command-line filter does not
    /// match its full name).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&name) {
            return self;
        }
        let mut b = Bencher { stats: Stats::default() };
        f(&mut b);
        self.criterion.record(name, b.stats, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    results: Vec<BenchResult>,
    /// Substring filter from the command line (`cargo bench -- <filter>`),
    /// matching real criterion's behavior: only benchmarks whose full
    /// name contains the filter run.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag argument, as real criterion does (cargo passes
        // `--bench` and friends; everything after `--` is ours).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { results: Vec::new(), filter }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, criterion: self }
    }

    /// True when `name` passes the command-line filter (always true
    /// without one).
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(name) {
            return self;
        }
        let mut b = Bencher { stats: Stats::default() };
        f(&mut b);
        self.record(name.to_string(), b.stats, None);
        self
    }

    fn record(&mut self, name: String, stats: Stats, throughput: Option<Throughput>) {
        report(&name, stats, throughput);
        self.results.push(BenchResult { name, stats, throughput });
    }

    /// Results recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes every recorded result whose name starts with `prefix` as a
    /// JSON trajectory file: one run's numbers, stamped with the wall
    /// clock, appendable across runs by external tooling. Hand-rolled
    /// serialization — the environment is offline, so no serde.
    ///
    /// When no recorded result matches `prefix` — typically because a
    /// command-line filter excluded the whole group — nothing is written
    /// and `Ok(false)` is returned: a filtered-out group must not clobber
    /// another group's trajectory file with an empty one.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn export_json(&self, path: &str, prefix: &str) -> std::io::Result<bool> {
        let matching: Vec<&BenchResult> =
            self.results.iter().filter(|r| r.name.starts_with(prefix)).collect();
        if matching.is_empty() {
            return Ok(false);
        }
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"prefix\": \"{}\",\n", escape(prefix)));
        out.push_str(&format!("  \"unix_time\": {unix_time},\n"));
        out.push_str("  \"results\": [\n");
        for (i, r) in matching.iter().enumerate() {
            let sep = if i + 1 == matching.len() { "" } else { "," };
            let mut fields = format!(
                "\"name\": \"{}\", \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"max_ns\": {:.1}",
                escape(&r.name),
                r.stats.min_ns,
                r.stats.median_ns,
                r.stats.max_ns
            );
            match r.throughput {
                Some(Throughput::Bytes(b)) => {
                    let mib_s = b as f64 / (r.stats.median_ns / 1e9) / (1024.0 * 1024.0);
                    fields.push_str(&format!(
                        ", \"bytes_per_iter\": {b}, \"mib_per_s_median\": {mib_s:.2}"
                    ));
                }
                Some(Throughput::Elements(e)) => {
                    fields.push_str(&format!(", \"elements_per_iter\": {e}"));
                }
                None => {}
            }
            out.push_str(&format!("    {{{fields}}}{sep}\n"));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out)?;
        Ok(true)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Groups benchmark functions under one runner (vendored form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! No-false-positive sweep for the static verifier and spec linter: every
//! builtin protocol, at every experiment level, must verify with zero
//! errors — including the clear↔obfuscated transcode pairings a gateway
//! deployment would compile. The tamper tests inside `core::verify` prove
//! each rule *fires*; this sweep proves the rules stay *silent* on every
//! derivation the project ships.

use protoobf::core::plan::CopyProgram;
use protoobf::core::verify;
use protoobf::spec::lint;
use protoobf::{Codec, Profile, SpecSource, StdResolver};

const BUILTINS: &[&str] = &[
    "dns-query",
    "dns-response",
    "http-request",
    "http-response",
    "modbus-request",
    "modbus-response",
];

fn derive(name: &str, level: u32) -> Codec {
    Profile::symmetric(SpecSource::Builtin(name.to_string()))
        .key("lint sweep")
        .level(level)
        .derive_with(&StdResolver)
        .expect("builtin derives")
        .tx
}

/// Verifies one codec the way `protoobf lint` does: the plan + channel-map
/// pass, then both directions of the clear↔obfuscated gateway pairing.
fn assert_verifies_clean(label: &str, codec: &Codec) {
    let diags = verify::verify_codec(codec);
    assert!(diags.is_empty(), "{label}: {diags:?}");
    let clear = Codec::identity(codec.plain());
    for (dir, src, dst) in [("clear→obf", &clear, codec), ("obf→clear", codec, &clear)] {
        let prog = CopyProgram::compile(src.obf_graph(), dst.obf_graph())
            .expect("identity pairing shares the plain spec");
        let diags = verify::verify_copy_program(src.obf_graph(), dst.obf_graph(), &prog);
        assert!(diags.is_empty(), "{label} {dir}: {diags:?}");
    }
}

#[test]
fn all_builtins_verify_clean_across_levels() {
    for name in BUILTINS {
        for level in 0..=3 {
            let codec = derive(name, level);
            assert_verifies_clean(&format!("{name} level {level}"), &codec);
        }
    }
}

/// Builtins may carry *warnings* (DNS/HTTP retain inherent terminator
/// ambiguity by protocol convention) but the lint pass must never produce
/// a surprise: the warning set is stable per protocol and modbus is
/// entirely clean.
#[test]
fn builtin_lint_warnings_are_stable() {
    for name in BUILTINS {
        let codec = derive(name, 2);
        let lints = lint::lint_graph(codec.plain());
        match *name {
            "modbus-request" | "modbus-response" => {
                assert!(lints.is_empty(), "{name}: {lints:?}");
            }
            _ => {
                // DNS: zero-length labels alias the name terminator.
                // HTTP: free text can begin with the header terminator.
                assert!(!lints.is_empty(), "{name}: expected the known ambiguity");
                assert!(
                    lints.iter().all(|l| l.code == lint::TERMINATOR_ALIASING),
                    "{name}: {lints:?}"
                );
            }
        }
    }
}

/// Both legs of an asymmetric request/response profile verify clean —
/// the exact configuration the loopback smoke chain deploys.
#[test]
fn asymmetric_profile_verifies_both_legs() {
    let profile = Profile::asymmetric(
        SpecSource::Builtin("dns-query".into()),
        SpecSource::Builtin("dns-response".into()),
    )
    .key("asym sweep")
    .level(3);
    let derivation = profile.derive_with(&StdResolver).expect("derives");
    assert_verifies_clean("tx dns-query", &derivation.tx);
    let rx = derivation.rx.as_ref().expect("asymmetric profile has an rx codec");
    assert_verifies_clean("rx dns-response", rx);
}

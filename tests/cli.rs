//! Integration tests for the `protoobf` command-line tool.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_protoobf"))
}

fn write_spec(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("protoobf-cli-test-{name}.pobf"));
    std::fs::write(&path, body).unwrap();
    path
}

const SPEC: &str = r#"
message Cli {
    u16 id;
    u16 length = len(payload);
    bytes payload sized_by length;
    ascii tag until ";";
}
"#;

#[test]
fn check_validates_a_spec() {
    let path = write_spec("check", SPEC);
    let out = cli().arg("check").arg(&path).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Cli: ok"));
    assert!(stdout.contains("nodes"));
}

#[test]
fn check_rejects_a_bad_spec() {
    let path = write_spec("bad", "message M { bytes x; }");
    let out = cli().arg("check").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn print_is_reparseable() {
    let path = write_spec("print", SPEC);
    let out = cli().arg("print").arg(&path).output().unwrap();
    assert!(out.status.success());
    let printed = String::from_utf8(out.stdout).unwrap();
    protoobf::spec::parse_spec(&printed).expect("printed spec parses");
}

#[test]
fn demo_roundtrips() {
    let path = write_spec("demo", SPEC);
    let out =
        cli().args(["demo"]).arg(&path).args(["--level", "2", "--seed", "9"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("round-trip: ok"), "{stdout}");
}

#[test]
fn gen_writes_c_library() {
    let path = write_spec("gen", SPEC);
    let out_path = std::env::temp_dir().join("protoobf-cli-test-lib.c");
    let out = cli()
        .arg("gen")
        .arg(&path)
        .args(["--level", "1", "--seed", "3", "-o"])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let source = std::fs::read_to_string(&out_path).unwrap();
    assert!(source.contains("static int parse_"));
    assert!(source.contains("ProtoObf"));
}

#[test]
fn dot_emits_graphviz() {
    let path = write_spec("dot", SPEC);
    for level in ["0", "2"] {
        let out = cli().arg("dot").arg(&path).args(["--level", level]).output().unwrap();
        assert!(out.status.success());
        let dot = String::from_utf8_lossy(&out.stdout);
        assert!(dot.starts_with("digraph"), "level {level}: {dot}");
    }
}

#[test]
fn unknown_command_fails_cleanly() {
    let path = write_spec("unknown", SPEC);
    let out = cli().arg("bogus").arg(&path).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn missing_file_reports_error() {
    let out = cli().args(["check", "/nonexistent/spec.pobf"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

/// Every subcommand must reject trailing garbage with the usage text and
/// the offending token named (exit code 2: a usage error, not a runtime
/// failure).
#[test]
fn every_subcommand_rejects_trailing_garbage() {
    let path = write_spec("garbage", SPEC);
    for cmd in ["check", "print", "dot", "gen", "demo", "gateway", "recv", "send"] {
        let out = cli().arg(cmd).arg(&path).arg("trailing-garbage").output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{cmd}: garbage must be a usage error");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("trailing-garbage"), "{cmd}: must name the token: {stderr}");
        assert!(stderr.contains("usage:"), "{cmd}: must print usage: {stderr}");
    }
}

#[test]
fn unknown_flags_and_malformed_values_route_through_usage() {
    let path = write_spec("badflags", SPEC);
    let cases: &[(&[&str], &str)] = &[
        (&["check", "--bogus-flag"], "--bogus-flag"),
        (&["demo", "--seed", "not-a-number"], "not-a-number"),
        (&["demo", "--level", "x9"], "x9"),
        (&["gateway", "--listen", "not@an:addr"], "not@an:addr"),
        (&["send", "--connect", "12345"], "12345"),
        (&["recv", "--workers", "two"], "two"),
        (&["recv", "--admin", "nohostport"], "nohostport"),
        (&["gateway", "--admin", ":9"], ":9"),
    ];
    for (args, needle) in cases {
        let out = cli().args(*args).arg(&path).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: must name {needle:?}: {stderr}");
        assert!(stderr.contains("usage:"), "{args:?}: must print usage: {stderr}");
    }

    // A flag at the very end with its value missing (no spec path after
    // it to swallow).
    let out = cli().arg("demo").arg(&path).arg("--seed").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed needs a value"));
}

#[test]
fn missing_spec_and_profile_conflicts_are_usage_errors() {
    let out = cli().arg("check").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing specification"));

    // --profile and a positional spec are mutually exclusive, as are
    // --profile and the legacy derivation flags.
    let profile = write_profile("conflict", "profile protoobf/1\nspec builtin:dns-query\n");
    let spec = write_spec("conflict", SPEC);
    let out = cli().arg("check").arg(&spec).arg("--profile").arg(&profile).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--profile excludes"));
    let out =
        cli().args(["check", "--profile"]).arg(&profile).args(["--seed", "3"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed"));
}

fn write_profile(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("protoobf-cli-test-{name}.profile"));
    std::fs::write(&path, body).unwrap();
    path
}

const ASYM_PROFILE: &str = "profile protoobf/1\n\
                            tx builtin:dns-query\n\
                            rx builtin:dns-response\n\
                            key \"cli test secret\"\n\
                            level 2\n";

/// `check --profile` and `print --profile` expose the derivation
/// fingerprint, and two runs over the same file agree (the operator's
/// offline diff of two endpoints).
#[test]
fn profile_check_and_print_report_a_stable_fingerprint() {
    let path = write_profile("fp", ASYM_PROFILE);
    let fingerprint_of = |out: &std::process::Output| -> String {
        let stdout = String::from_utf8_lossy(&out.stdout);
        stdout
            .lines()
            .find_map(|l| l.strip_prefix("fingerprint "))
            .unwrap_or_else(|| panic!("no fingerprint line in {stdout:?}"))
            .to_string()
    };

    let a = cli().args(["check", "--profile"]).arg(&path).output().unwrap();
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let stdout = String::from_utf8_lossy(&a.stdout);
    assert!(stdout.contains("tx DnsQuery"), "{stdout}");
    assert!(stdout.contains("rx DnsResponse"), "{stdout}");
    let fp_a = fingerprint_of(&a);
    assert_eq!(fp_a.len(), 32, "fingerprint is 32 hex chars: {fp_a}");

    let b = cli().args(["print", "--profile"]).arg(&path).output().unwrap();
    assert!(b.status.success());
    let printed = String::from_utf8_lossy(&b.stdout);
    // The canonical profile text round-trips through the printout...
    assert!(printed.contains("tx builtin:dns-query"), "{printed}");
    assert!(printed.contains("rx builtin:dns-response"), "{printed}");
    // ...and the summary carries the same fingerprint as `check`.
    assert_eq!(fingerprint_of(&b), fp_a);

    // A different key must print a different fingerprint.
    let other = write_profile("fp2", &ASYM_PROFILE.replace("cli test secret", "other secret"));
    let c = cli().args(["check", "--profile"]).arg(&other).output().unwrap();
    assert!(c.status.success());
    assert_ne!(fingerprint_of(&c), fp_a, "key change must change the fingerprint");
}

#[test]
fn malformed_profile_reports_line_and_token() {
    let path = write_profile("bad", "profile protoobf/1\nspec builtin:dns-query\nbogus 1\n");
    let out = cli().args(["check", "--profile"]).arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "a bad profile file is a data error, not usage");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3"), "{stderr}");
    assert!(stderr.contains("bogus"), "{stderr}");
}

/// Spec paths are taken verbatim on the command line: whitespace (legal
/// in filenames, illegal only inside profile text sources) must work.
#[test]
fn spec_paths_with_spaces_keep_working() {
    let path = std::env::temp_dir().join("protoobf cli test with spaces.pobf");
    std::fs::write(&path, SPEC).unwrap();
    let out = cli().arg("check").arg(&path).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Cli: ok"));
}

/// The telemetry summary every networked subcommand prints at exit, and
/// the `--quiet` flag that suppresses it: a real echo chain over
/// loopback, one client run with the summary and one without.
#[test]
fn telemetry_summary_prints_at_exit_and_quiet_suppresses_it() {
    // Reserve a loopback port the OS considers free, then hand it to
    // recv. The probe loop below absorbs the (unlikely) bind race.
    let listen = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };
    // Budget: one readiness probe + two client runs.
    let recv = cli()
        .args(["recv", "builtin:dns-query", "--listen", &listen, "--accept-limit", "3"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    for attempt in 0.. {
        match std::net::TcpStream::connect(&listen) {
            Ok(_) => break, // dropped: consumes one accept, answers EOF
            Err(e) if attempt > 100 => panic!("recv never became reachable: {e}"),
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }

    let loud = cli()
        .args(["send", "builtin:dns-query", "--connect", &listen, "--count", "2"])
        .output()
        .unwrap();
    assert!(loud.status.success(), "{}", String::from_utf8_lossy(&loud.stderr));
    let stderr = String::from_utf8_lossy(&loud.stderr);
    assert!(stderr.contains("client done:"), "summary must print by default: {stderr}");
    assert!(stderr.contains("frames:"), "{stderr}");

    let quiet = cli()
        .args(["send", "builtin:dns-query", "--connect", &listen, "--count", "2", "--quiet"])
        .output()
        .unwrap();
    assert!(quiet.status.success(), "{}", String::from_utf8_lossy(&quiet.stderr));
    let stderr = String::from_utf8_lossy(&quiet.stderr);
    assert!(!stderr.contains("client done:"), "--quiet must suppress the summary: {stderr}");

    // The server prints its own unified summary once the accept budget
    // drains, flight-recorder line included.
    let out = recv.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("server done:"), "{stderr}");
    assert!(stderr.contains("flight recorder:"), "{stderr}");
    assert!(stderr.contains("stages:"), "{stderr}");
}

/// Address flags validate shape only — an unresolvable hostname is a
/// runtime failure (exit 1), never a usage error (exit 2), so transient
/// DNS trouble cannot masquerade as a typo.
#[test]
fn hostnames_pass_flag_parsing_and_fail_at_runtime() {
    let out = cli()
        .args(["send", "builtin:dns-query", "--connect", "unresolvable.invalid:9", "--count", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(!String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

/// The legacy --seed alias changes derivation semantics versus pre-profile
/// releases; the CLI must say so out loud.
#[test]
fn seed_flag_warns_about_deprecation() {
    let path = write_spec("seedwarn", SPEC);
    let out = cli().arg("demo").arg(&path).args(["--seed", "7"]).output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deprecated"), "{stderr}");
    // --key stays silent.
    let out = cli().arg("demo").arg(&path).args(["--key", "7"]).output().unwrap();
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).contains("deprecated"));
}

#[test]
fn demo_accepts_profile_and_key() {
    let path = write_profile("demo", ASYM_PROFILE);
    let out = cli().args(["demo", "--profile"]).arg(&path).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("round-trip: ok"));

    // Legacy spec form with --key: same derivation path, new secret flag.
    let out = cli()
        .args(["demo", "builtin:modbus-request", "--key", "demo secret", "--level", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

// ---------------------------------------------------------------------------
// fuzz / resilience
// ---------------------------------------------------------------------------

#[test]
fn fuzz_runs_clean_on_a_builtin_spec() {
    let corpus = std::env::temp_dir().join("protoobf-cli-test-fuzz-corpus");
    let out = cli()
        .args(["fuzz", "builtin:modbus-request", "--level", "2", "--key", "fuzz secret"])
        .args(["--cases", "8", "--corpus"])
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fuzz: ok"), "{stdout}");
    assert!(stdout.contains("8 cases"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("0 divergence(s)"), "{stderr}");
    // A clean run must not grow the corpus directory.
    assert!(!corpus.exists() || std::fs::read_dir(&corpus).unwrap().next().is_none());
}

/// The case budget: `--cases` wins over `PROTOOBF_FUZZ_CASES`, which
/// wins over the default — the same knob the CI stress matrix sets.
#[test]
fn fuzz_case_budget_resolves_flag_over_env() {
    let base = ["fuzz", "builtin:modbus-request", "--key", "budget"];
    let out = cli().args(base).env("PROTOOBF_FUZZ_CASES", "5").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("5 cases per leg"));

    let out =
        cli().args(base).args(["--cases", "7"]).env("PROTOOBF_FUZZ_CASES", "5").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("7 cases per leg"));
}

/// A profile with asymmetric rx/tx fuzzes both gateway legs.
#[test]
fn fuzz_profile_covers_both_gateway_legs() {
    let path = write_profile("fuzz", ASYM_PROFILE);
    let out = cli().args(["fuzz", "--profile"]).arg(&path).args(["--cases", "5"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tx DnsQuery"), "{stderr}");
    assert!(stderr.contains("rx DnsResponse"), "{stderr}");
}

#[test]
fn resilience_exports_the_trajectory_json() {
    let out_path = std::env::temp_dir().join("protoobf-cli-test-resilience.json");
    let out = cli()
        .args(["resilience", "--samples", "4", "--max-level", "1", "-o"])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("level 0:"), "{stderr}");
    assert!(stderr.contains("level 1:"), "{stderr}");
    assert!(stderr.contains("wrote"), "{stderr}");
    let json = std::fs::read_to_string(&out_path).unwrap();
    assert!(json.contains("\"prefix\": \"resilience\""));
    assert!(json.contains("resilience/level-1"));

    // Without -o the JSON lands on stdout.
    let out = cli().args(["resilience", "--samples", "4", "--max-level", "0"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("resilience/level-0"));
}

#[test]
fn resilience_rejects_a_spec_argument() {
    let out = cli().args(["resilience", "builtin:dns-query"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

/// `lint` over a clean builtin: zero diagnostics, exit 0.
#[test]
fn lint_passes_a_clean_builtin() {
    let out = cli()
        .args(["lint", "builtin:modbus-request", "--level", "2", "--key", "lint"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lint: 0 error(s), 0 warning(s)"), "{stdout}");
}

/// DNS retains the label/terminator ambiguity by protocol convention:
/// `lint` reports it as an `L002` warning and still exits 0.
#[test]
fn lint_warns_on_dns_terminator_aliasing() {
    let out = cli().args(["lint", "builtin:dns-query", "--level", "1"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("L002 warning"), "{stdout}");
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}

/// `--deny-warnings` turns those warnings into exit 1.
#[test]
fn lint_deny_warnings_fails_on_warnings() {
    let out = cli()
        .args(["lint", "builtin:dns-query", "--level", "1", "--deny-warnings"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--deny-warnings"));

    // A warning-free spec passes even under --deny-warnings.
    let out = cli()
        .args(["lint", "builtin:modbus-response", "--level", "2", "--deny-warnings"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

/// A statically false optional branch in a user spec is an L001 warning.
#[test]
fn lint_flags_unreachable_optional() {
    let path = write_spec(
        "lint-unreachable",
        r#"
        message M {
            u8 version = const 2;
            optional legacy if version == 1 {
                u16 pad;
            }
        }
        "#,
    );
    let out = cli().args(["lint"]).arg(&path).args(["--deny-warnings"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("L001 warning"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// `lint --profile` covers both legs of an asymmetric deployment.
#[test]
fn lint_profile_covers_both_legs() {
    let path = write_profile("lint", ASYM_PROFILE);
    let out = cli().args(["lint", "--profile"]).arg(&path).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tx DnsQuery"), "{stdout}");
    assert!(stdout.contains("rx DnsResponse"), "{stdout}");
}

/// `lint` without a target is a usage error (exit 2).
#[test]
fn lint_without_target_is_a_usage_error() {
    let out = cli().args(["lint"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

//! Integration tests for the `protoobf` command-line tool.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_protoobf"))
}

fn write_spec(name: &str, body: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("protoobf-cli-test-{name}.pobf"));
    std::fs::write(&path, body).unwrap();
    path
}

const SPEC: &str = r#"
message Cli {
    u16 id;
    u16 length = len(payload);
    bytes payload sized_by length;
    ascii tag until ";";
}
"#;

#[test]
fn check_validates_a_spec() {
    let path = write_spec("check", SPEC);
    let out = cli().arg("check").arg(&path).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Cli: ok"));
    assert!(stdout.contains("nodes"));
}

#[test]
fn check_rejects_a_bad_spec() {
    let path = write_spec("bad", "message M { bytes x; }");
    let out = cli().arg("check").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn print_is_reparseable() {
    let path = write_spec("print", SPEC);
    let out = cli().arg("print").arg(&path).output().unwrap();
    assert!(out.status.success());
    let printed = String::from_utf8(out.stdout).unwrap();
    protoobf::spec::parse_spec(&printed).expect("printed spec parses");
}

#[test]
fn demo_roundtrips() {
    let path = write_spec("demo", SPEC);
    let out =
        cli().args(["demo"]).arg(&path).args(["--level", "2", "--seed", "9"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("round-trip: ok"), "{stdout}");
}

#[test]
fn gen_writes_c_library() {
    let path = write_spec("gen", SPEC);
    let out_path = std::env::temp_dir().join("protoobf-cli-test-lib.c");
    let out = cli()
        .arg("gen")
        .arg(&path)
        .args(["--level", "1", "--seed", "3", "-o"])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let source = std::fs::read_to_string(&out_path).unwrap();
    assert!(source.contains("static int parse_"));
    assert!(source.contains("ProtoObf"));
}

#[test]
fn dot_emits_graphviz() {
    let path = write_spec("dot", SPEC);
    for level in ["0", "2"] {
        let out = cli().arg("dot").arg(&path).args(["--level", level]).output().unwrap();
        assert!(out.status.success());
        let dot = String::from_utf8_lossy(&out.stdout);
        assert!(dot.starts_with("digraph"), "level {level}: {dot}");
    }
}

#[test]
fn unknown_command_fails_cleanly() {
    let path = write_spec("unknown", SPEC);
    let out = cli().arg("bogus").arg(&path).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn missing_file_reports_error() {
    let out = cli().args(["check", "/nonexistent/spec.pobf"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

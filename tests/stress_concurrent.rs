//! Concurrency stress test: N threads share one [`CodecService`] and
//! round-trip thousands of sampled messages across the DNS/HTTP/Modbus
//! specifications, asserting that every wire is **byte-identical** to the
//! single-threaded reference path (same message, same seed) and that
//! every parse recovers the same structure.
//!
//! What this protects: the service's pooled scratch must never leak state
//! between checkouts, the shared `CodecPlan` must behave as the immutable
//! value it claims to be, and deterministic seeding must hold regardless
//! of which thread/scratch combination serves a message.
//!
//! Message identity across threads relies on the deterministic builders:
//! `Message::with_seed(s)` + `serialize_into_seeded(seed)` reproduce the
//! exact wire of the reference `serialize_seeded` walk for the same
//! `(s, seed)` pair.

use std::sync::Arc;

use protoobf::core::sample::random_message;
use protoobf::core::{parse as parse_mod, serialize as serialize_mod};
use protoobf::protocols::{dns, http, modbus};
use protoobf::{Codec, CodecService, FormatGraph, Obfuscator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: u64 = 8;
const ROUNDS_PER_THREAD: u64 = 150; // × 3 protocols × 8 threads = 3600 messages

fn codec_for(graph: &FormatGraph, level: u32, seed: u64) -> Codec {
    if level == 0 {
        Codec::identity(graph)
    } else {
        Obfuscator::new(graph).seed(seed).max_per_node(level).obfuscate().unwrap()
    }
}

/// Deterministic per-(thread, round) seed, well spread.
fn seed_of(thread: u64, round: u64) -> u64 {
    (thread << 32 ^ round).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[test]
fn shared_service_matches_single_threaded_reference() {
    let specs: Vec<(&str, FormatGraph)> = vec![
        ("dns-resp", dns::response_graph()),
        ("http-req", http::request_graph()),
        ("modbus-req", modbus::request_graph()),
    ];
    for (name, graph) in &specs {
        for level in [0u32, 2] {
            let service = Arc::new(CodecService::new(codec_for(graph, level, 7)));

            // Single-threaded reference wires, computed up front with the
            // same deterministic (message seed, serialize seed) pairs the
            // workers will use.
            let mut reference: Vec<Vec<Vec<u8>>> = Vec::new();
            for t in 0..THREADS {
                let mut per_thread = Vec::new();
                for r in 0..ROUNDS_PER_THREAD {
                    let mut rng = StdRng::seed_from_u64(seed_of(t, r));
                    let msg = random_message(service.codec(), &mut rng);
                    let wire = serialize_mod::serialize_seeded(
                        service.codec().obf_graph(),
                        &msg,
                        seed_of(t, r) ^ 0xA5,
                    )
                    .unwrap();
                    per_thread.push(wire);
                }
                reference.push(per_thread);
            }
            let reference = Arc::new(reference);

            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let service = Arc::clone(&service);
                    let reference = Arc::clone(&reference);
                    scope.spawn(move || {
                        let mut serializer = service.serializer();
                        let mut parser = service.parser();
                        let mut wire = Vec::new();
                        for r in 0..ROUNDS_PER_THREAD {
                            // Rebuild the same message the reference used.
                            let mut rng = StdRng::seed_from_u64(seed_of(t, r));
                            let msg = random_message(service.codec(), &mut rng);
                            serializer
                                .serialize_into_seeded(&msg, &mut wire, seed_of(t, r) ^ 0xA5)
                                .unwrap_or_else(|e| {
                                    panic!("{name} level={level} t={t} r={r}: serialize: {e}")
                                });
                            assert_eq!(
                                wire, reference[t as usize][r as usize],
                                "{name} level={level} t={t} r={r}: wire diverged from the \
                                 single-threaded reference"
                            );
                            let back = parser.parse_in_place(&wire).unwrap_or_else(|e| {
                                panic!("{name} level={level} t={t} r={r}: parse: {e}")
                            });
                            // Structural equality against the reference
                            // graph-walk parser, via normalization (both
                            // sides carry the same parsed wires, so pads
                            // and shares normalize identically).
                            let ref_parsed =
                                parse_mod::parse(service.codec().obf_graph(), &wire).unwrap();
                            assert_eq!(
                                serialize_mod::serialize_seeded(
                                    service.codec().obf_graph(),
                                    back,
                                    0
                                )
                                .unwrap(),
                                serialize_mod::serialize_seeded(
                                    service.codec().obf_graph(),
                                    &ref_parsed,
                                    0
                                )
                                .unwrap(),
                                "{name} level={level} t={t} r={r}: parse diverged"
                            );
                        }
                    });
                }
            });

            // Every round-trip used pooled sessions; after the scope the
            // scratch is parked again (bounded by threads, not messages).
            let stats = service.stats();
            assert!(
                stats.pooled_serializers <= THREADS as usize,
                "{name}: pool retained more scratch than peak concurrency"
            );
        }
    }
}

#[test]
fn batch_paths_under_contention() {
    // Many threads hammering the batch + framing service APIs on one
    // shared service: results must match per-message one-shot paths.
    let graph = modbus::request_graph();
    let service = Arc::new(CodecService::new(codec_for(&graph, 2, 11)));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                for _ in 0..20 {
                    let msgs: Vec<_> =
                        (0..8).map(|_| random_message(service.codec(), &mut rng)).collect();
                    let wires = service.serialize_batch(&msgs).unwrap();
                    let back = service.parse_batch(&wires).unwrap();
                    for (wire, parsed) in wires.iter().zip(&back) {
                        let ref_parsed =
                            parse_mod::parse(service.codec().obf_graph(), wire).unwrap();
                        assert_eq!(
                            serialize_mod::serialize_seeded(service.codec().obf_graph(), parsed, 0)
                                .unwrap(),
                            serialize_mod::serialize_seeded(
                                service.codec().obf_graph(),
                                &ref_parsed,
                                0
                            )
                            .unwrap(),
                            "batch roundtrip diverged under contention"
                        );
                    }
                }
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.serialized_messages, THREADS * 20 * 8);
    assert_eq!(stats.parsed_messages, THREADS * 20 * 8);
}

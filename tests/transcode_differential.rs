//! Differential testing of the gateway relay's transcode step.
//!
//! The relay re-expresses every parsed message under the other leg's
//! codec. Two implementations exist: the compiled copy-program path
//! (`Message::transcode_into`, the production hot path) and the
//! graph-walk reference (`Message::transcode_into_walk`). For every
//! input the proptest mutation harness can produce — pristine wires,
//! mutated wires the parser still accepts, and the pinned corpus under
//! `tests/corpus/` — the two must **agree**: identical destination
//! messages (byte-identical under the reference serializer, including
//! the random share streams drawn from identically seeded destination
//! RNGs), or the same typed error. Hostile frames never reach the
//! transcode step on either path: both parsers reject them with the
//! same typed error, which this harness re-checks on the corpus.

use proptest::prelude::*;
use protoobf::core::sample::random_message;
use protoobf::core::{parse as parse_mod, serialize as serialize_mod, BuildError};
use protoobf::protocols::{dns, http, modbus};
use protoobf::{Codec, FormatGraph, Message, Obfuscator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The spec corpus, indexable by the fuzzer (same order as the corpus
/// file format of `tests/fuzz_differential.rs`).
const PROTOS: [&str; 6] = ["dnsq", "dnsr", "httpq", "httpr", "modq", "modr"];

fn graph_of(proto: &str) -> FormatGraph {
    match proto {
        "dnsq" => dns::query_graph(),
        "dnsr" => dns::response_graph(),
        "httpq" => http::request_graph(),
        "httpr" => http::response_graph(),
        "modq" => modbus::request_graph(),
        "modr" => modbus::response_graph(),
        other => panic!("unknown proto tag {other:?}"),
    }
}

fn codec_for(graph: &FormatGraph, level: u32, seed: u64) -> Codec {
    if level == 0 {
        Codec::identity(graph)
    } else {
        Obfuscator::new(graph).seed(seed).max_per_node(level).obfuscate().unwrap()
    }
}

/// Transcodes `src` into `dst` through both implementations — fresh
/// destination messages with **identical RNG seeds**, so the random
/// shares of op-splits must line up too — and demands byte-identical
/// results (or the same typed error) under the reference serializer.
fn check_transcode_agreement(src: &Message<'_>, dst: &Codec, seed: u64) -> Result<(), String> {
    let mut compiled = dst.message_seeded(seed);
    let mut walked = dst.message_seeded(seed);
    let ra = src.transcode_into(&mut compiled);
    let rb = src.transcode_into_walk(&mut walked);
    match (ra, rb) {
        (Ok(()), Ok(())) => {
            let sa = serialize_mod::serialize_seeded(dst.obf_graph(), &compiled, 0)
                .map_err(|e| e.to_string());
            let sb = serialize_mod::serialize_seeded(dst.obf_graph(), &walked, 0)
                .map_err(|e| e.to_string());
            if sa != sb {
                return Err(format!(
                    "transcode paths diverged onto {}\n  compiled: {sa:02x?}\n  walk:     {sb:02x?}",
                    dst.plain().name()
                ));
            }
            Ok(())
        }
        (Err(ea), Err(eb)) => {
            if std::mem::discriminant(&ea) == std::mem::discriminant(&eb) {
                Ok(())
            } else {
                Err(format!("transcode errors diverged: compiled {ea:?} vs walk {eb:?}"))
            }
        }
        (ra, rb) => Err(format!("transcode outcomes diverged: compiled {ra:?} vs walk {rb:?}")),
    }
}

/// Runs the relay step over one wire: parse it under `codec`; when the
/// parser accepts, the parsed message must transcode identically through
/// both paths onto the clear codec and onto a *different* obfuscation of
/// the same spec (the two gateway directions).
fn check_relay(
    codec: &Codec,
    clear: &Codec,
    other: &Codec,
    wire: &[u8],
    seed: u64,
) -> Result<(), String> {
    let mut session = codec.parser();
    if session.parse_in_place(wire).is_err() {
        // Hostile frame: it never reaches the transcode step. Parser
        // agreement (same typed failure on both parser implementations)
        // is pinned by tests/fuzz_differential.rs and re-checked on the
        // corpus below.
        return Ok(());
    }
    let msg = session.take_message();
    check_transcode_agreement(&msg, clear, seed)?;
    check_transcode_agreement(&msg, other, seed)
}

/// One mutation instruction, as in `tests/fuzz_differential.rs`.
fn mutate(wire: &mut Vec<u8>, kind: u8, pos: usize, val: u8) {
    if wire.is_empty() {
        wire.push(val);
        return;
    }
    match kind % 4 {
        0 => {
            let p = pos % wire.len();
            wire[p] ^= val | 1;
        }
        1 => {
            let p = pos % (wire.len() + 1);
            wire.truncate(p);
        }
        2 => {
            let p = pos % (wire.len() + 1);
            wire.insert(p, val);
        }
        _ => {
            let p = pos % wire.len();
            wire.remove(p);
        }
    }
}

fn fuzz_cases() -> u32 {
    std::env::var("PROTOOBF_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    #[test]
    fn mutated_wires_transcode_identically(
        proto_idx in 0usize..6,
        level in 0u32..=3,
        plan_seed in 0u64..3,
        msg_seed in any::<u64>(),
        mutations in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u8>()), 0..5),
    ) {
        let graph = graph_of(PROTOS[proto_idx]);
        let codec = codec_for(&graph, level, plan_seed);
        let clear = Codec::identity(&graph);
        let other = codec_for(&graph, 2, plan_seed + 17);
        let mut rng = StdRng::seed_from_u64(msg_seed);
        let msg = random_message(&codec, &mut rng);
        let mut wire = serialize_mod::serialize_seeded(codec.obf_graph(), &msg, msg_seed ^ 0x5EED)
            .expect("sampled messages serialize");

        // The pristine wire parses, so the relay step definitely runs.
        if let Err(e) = check_relay(&codec, &clear, &other, &wire, msg_seed) {
            prop_assert!(false, "{} l{level} p{plan_seed} valid wire: {e}", PROTOS[proto_idx]);
        }
        // Mutated wires: whenever the parser still accepts, the relay
        // step must still agree.
        for (kind, pos, val) in &mutations {
            mutate(&mut wire, *kind, *pos, *val);
            if let Err(e) = check_relay(&codec, &clear, &other, &wire, msg_seed) {
                prop_assert!(
                    false,
                    "{} l{level} p{plan_seed} after {:?}: {e}",
                    PROTOS[proto_idx],
                    mutations
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// regression corpus
// ---------------------------------------------------------------------------

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Parses `<proto>-l<level>-p<planseed>-<desc>.bin` into a codec config.
fn corpus_config(name: &str) -> Option<(String, u32, u64)> {
    let mut parts = name.strip_suffix(".bin")?.splitn(4, '-');
    let proto = parts.next()?.to_string();
    let level = parts.next()?.strip_prefix('l')?.parse().ok()?;
    let seed = parts.next()?.strip_prefix('p')?.parse().ok()?;
    Some((proto, level, seed))
}

/// Every pinned corpus wire — valid and hostile — through the relay
/// step: valid frames must transcode identically through both paths in
/// both gateway directions; hostile frames must fail *parsing* with the
/// same typed error on both parser implementations, never reaching the
/// transcode step on either.
#[test]
fn corpus_transcode_agreement() {
    let dir = corpus_dir();
    let mut checked = 0usize;
    let mut relayed = 0usize;
    for entry in std::fs::read_dir(&dir).expect("tests/corpus exists") {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.ends_with(".bin") {
            continue;
        }
        let (proto, level, plan_seed) =
            corpus_config(&name).unwrap_or_else(|| panic!("bad corpus file name {name:?}"));
        let graph = graph_of(&proto);
        let codec = codec_for(&graph, level, plan_seed);
        let clear = Codec::identity(&graph);
        let other = codec_for(&graph, 2, plan_seed + 17);
        let bytes = std::fs::read(&path).unwrap();

        let mut session = codec.parser();
        match session.parse_in_place(&bytes) {
            Ok(_) => {
                let msg = session.take_message();
                if let Err(e) = check_transcode_agreement(&msg, &clear, 7) {
                    panic!("corpus {name} (clear direction): {e}");
                }
                if let Err(e) = check_transcode_agreement(&msg, &other, 7) {
                    panic!("corpus {name} (re-obfuscate direction): {e}");
                }
                relayed += 1;
            }
            Err(plan_err) => {
                // Hostile frame: the graph-walk parser must reject it
                // with the same typed error — the relay tears the
                // connection down identically no matter the parser.
                match parse_mod::parse(codec.obf_graph(), &bytes) {
                    Err(walk_err) => assert_eq!(
                        std::mem::discriminant(&plan_err),
                        std::mem::discriminant(&walk_err),
                        "corpus {name}: parsers disagree on the failure ({plan_err:?} vs {walk_err:?})"
                    ),
                    Ok(_) => panic!("corpus {name}: walk parser accepted what the plan rejected"),
                }
            }
        }
        checked += 1;
    }
    assert!(checked >= 6, "regression corpus went missing (found {checked} files)");
    assert!(relayed >= 4, "corpus lost its valid wires (only {relayed} transcoded)");
}

/// Both transcode implementations reject a foreign specification with
/// the same typed error ([`BuildError::GraphMismatch`]).
#[test]
fn foreign_spec_rejected_identically() {
    let dns = codec_for(&dns::query_graph(), 1, 3);
    let modbus = codec_for(&modbus::request_graph(), 1, 3);
    let mut rng = StdRng::seed_from_u64(5);
    let msg = random_message(&dns, &mut rng);
    let mut compiled = modbus.message_seeded(1);
    let mut walked = modbus.message_seeded(1);
    assert!(matches!(msg.transcode_into(&mut compiled), Err(BuildError::GraphMismatch { .. })));
    assert!(matches!(msg.transcode_into_walk(&mut walked), Err(BuildError::GraphMismatch { .. })));
}

//! Differential/property tests of the covert tunnel subsystem
//! (`core::tunnel`) across the builtin protocol suite.
//!
//! Three claims are pinned, over every builtin × obfuscation level:
//!
//! * **lossless**: any payload (0 bytes up to 64 KiB) pushed through
//!   encoder → gateway pair (clear → obfuscated → clear transcode, the
//!   exact per-message work a deployed relay chain performs) → decoder
//!   comes out byte-identical;
//! * **tamper-safe**: corrupted carrier channels produce typed
//!   [`TunnelError`]s or are ignored as plain cover — never a panic and
//!   never silently wrong bytes;
//! * **delivery-tolerant**: reordered frames reassemble, dropped frames
//!   leave the decoder typed-incomplete.
//!
//! Case counts share the `PROTOOBF_FUZZ_CASES` knob with the other
//! differential harnesses so the CI stress matrix drives all of them
//! from one variable.

use proptest::prelude::*;
use protoobf::core::tunnel::{encode_stream, ChannelMap, TunnelDecoder, TunnelError};
use protoobf::protocols::{dns, http, modbus};
use protoobf::{Codec, FormatGraph, Message, Obfuscator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PROTOS: [&str; 6] = [
    "dns-query",
    "dns-response",
    "http-request",
    "http-response",
    "modbus-request",
    "modbus-response",
];

fn graph_of(proto: &str) -> FormatGraph {
    match proto {
        "dns-query" => dns::query_graph(),
        "dns-response" => dns::response_graph(),
        "http-request" => http::request_graph(),
        "http-response" => http::response_graph(),
        "modbus-request" => modbus::request_graph(),
        "modbus-response" => modbus::response_graph(),
        other => panic!("unknown builtin {other:?}"),
    }
}

fn obf_codec(graph: &FormatGraph, level: u32) -> Codec {
    if level == 0 {
        Codec::identity(graph)
    } else {
        Obfuscator::new(graph).seed(23).max_per_node(level).obfuscate().unwrap()
    }
}

/// Pushes every encoded cover message through the full gateway-pair
/// chain — clear parse, transcode to the obfuscated grammar, obfuscated
/// serialize + parse, transcode back to clear — and feeds the surviving
/// clear messages to a decoder. Returns the reassembled payload.
fn round_trip_via_gateways(
    clear: &Codec,
    obf: &Codec,
    msgs: &[Message<'_>],
    seed: u64,
) -> Result<Vec<u8>, TunnelError> {
    let mut clear_parser = clear.parser();
    let mut obf_parser = obf.parser();
    let mut obf_serializer = obf.serializer();
    let mut to_obf = obf.transcode_target(clear).unwrap();
    let mut to_clear = clear.transcode_target(obf).unwrap();
    let mut obf_wire = Vec::new();

    let mut dec = TunnelDecoder::new(clear)?;
    let mut out = Vec::new();
    for (i, msg) in msgs.iter().enumerate() {
        let clear_wire = clear.serialize_seeded(msg, seed ^ i as u64).unwrap();
        let inbound = clear_parser.parse_in_place(&clear_wire).unwrap();
        inbound.transcode_into(&mut to_obf).unwrap();
        obf_serializer
            .serialize_into_seeded(&to_obf, &mut obf_wire, seed ^ (i as u64) << 1)
            .unwrap();
        let upstream = obf_parser.parse_in_place(&obf_wire).unwrap();
        upstream.transcode_into(&mut to_clear).unwrap();
        dec.accept(&to_clear)?;
        dec.take_ready(&mut out);
    }
    if !dec.is_complete() {
        return Err(TunnelError::Incomplete {
            delivered: dec.bytes_delivered(),
            expected: dec.total_expected(),
        });
    }
    Ok(out)
}

fn tunnel_cases() -> u32 {
    std::env::var("PROTOOBF_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(tunnel_cases()))]

    /// Lossless round trip: random payloads through the full chain.
    #[test]
    fn payload_round_trips_byte_identically(
        proto_idx in 0usize..6,
        level_idx in 0usize..2,
        len in 0usize..16384,
        payload_seed in any::<u64>(),
    ) {
        let level = [0u32, 2][level_idx];
        let graph = graph_of(PROTOS[proto_idx]);
        let clear = Codec::identity(&graph);
        let obf = obf_codec(&graph, level);
        let mut rng = StdRng::seed_from_u64(payload_seed);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();

        let msgs = encode_stream(&clear, &payload, payload_seed ^ 0xC0DE).unwrap();
        let out = round_trip_via_gateways(&clear, &obf, &msgs, payload_seed).unwrap();
        prop_assert_eq!(
            out, payload,
            "{} level {} must deliver the payload byte-identically", PROTOS[proto_idx], level
        );
    }

    /// Tamper safety: a byte flipped anywhere in a cover message's
    /// carrier channel either surfaces as a typed decoder error, is
    /// ignored as plain cover, or (padding hits) leaves the payload
    /// intact — never a panic, never silently wrong bytes.
    #[test]
    fn corrupted_carriers_never_yield_wrong_bytes(
        proto_idx in 0usize..6,
        len in 1usize..512,
        payload_seed in any::<u64>(),
        victim in any::<usize>(),
        pos in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let graph = graph_of(PROTOS[proto_idx]);
        let clear = Codec::identity(&graph);
        let map = ChannelMap::analyze(&clear);
        let mut rng = StdRng::seed_from_u64(payload_seed);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();

        let mut msgs = encode_stream(&clear, &payload, payload_seed ^ 0xBAD).unwrap();
        let victim = victim % msgs.len();
        let mut channel = Vec::new();
        map.read_channel(&msgs[victim], &mut channel);
        let pos = pos % channel.len();
        channel[pos] ^= flip;
        map.write_channel(&mut msgs[victim], &channel).unwrap();

        let mut dec = TunnelDecoder::new(&clear).unwrap();
        let mut out = Vec::new();
        let mut failed = false;
        for msg in &msgs {
            match dec.accept(msg) {
                Ok(_) => { dec.take_ready(&mut out); }
                Err(_) => { failed = true; break; }
            }
        }
        if !failed && dec.is_complete() {
            // Flip landed in padding (or was repaired by a duplicate):
            // the delivered stream must still be exactly the payload.
            prop_assert_eq!(out, payload, "{}: undetected corruption", PROTOS[proto_idx]);
        } else if !failed {
            // Frame rejected as cover or stream left open: everything
            // actually delivered must be a prefix of the true payload.
            prop_assert!(
                out.as_slice() == &payload[..out.len()],
                "{}: delivered bytes diverge from the payload", PROTOS[proto_idx]
            );
        }
    }

    /// Delivery tolerance: frames arriving in any order reassemble; a
    /// dropped frame leaves the decoder typed-incomplete.
    #[test]
    fn reordered_and_dropped_frames_are_tolerated(
        proto_idx in 0usize..6,
        len in 1usize..2048,
        payload_seed in any::<u64>(),
        order_seed in any::<u64>(),
        drop_idx in any::<usize>(),
    ) {
        let graph = graph_of(PROTOS[proto_idx]);
        let clear = Codec::identity(&graph);
        let mut rng = StdRng::seed_from_u64(payload_seed);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let msgs = encode_stream(&clear, &payload, payload_seed ^ 0x0DD).unwrap();

        // Shuffle (Fisher–Yates over indices, deterministic per seed).
        let mut order: Vec<usize> = (0..msgs.len()).collect();
        let mut orng = StdRng::seed_from_u64(order_seed);
        for i in (1..order.len()).rev() {
            order.swap(i, orng.gen_range(0..=i));
        }
        let mut dec = TunnelDecoder::new(&clear).unwrap();
        let mut out = Vec::new();
        for &i in &order {
            dec.accept(&msgs[i]).unwrap();
            dec.take_ready(&mut out);
        }
        prop_assert!(dec.is_complete(), "{}: reordered stream must complete", PROTOS[proto_idx]);
        prop_assert_eq!(out, payload);

        // Drop one frame: the stream must stay typed-incomplete.
        if msgs.len() > 1 {
            let drop_idx = drop_idx % msgs.len();
            let mut dec = TunnelDecoder::new(&clear).unwrap();
            let mut out = Vec::new();
            for (i, msg) in msgs.iter().enumerate() {
                if i == drop_idx {
                    continue;
                }
                dec.accept(msg).unwrap();
                dec.take_ready(&mut out);
            }
            prop_assert!(
                !dec.is_complete(),
                "{}: a dropped frame must leave the stream incomplete", PROTOS[proto_idx]
            );
            prop_assert!(out.as_slice() == &payload[..out.len()], "prefix property violated");
        }
    }
}

/// The upper end of the advertised payload range, deterministic: one
/// 64 KiB stream through the level-2 gateway chain of each builtin.
#[test]
fn sixty_four_kib_payload_round_trips_on_every_builtin() {
    let mut rng = StdRng::seed_from_u64(0x64_000);
    let payload: Vec<u8> = (0..64 * 1024).map(|_| rng.gen()).collect();
    for proto in PROTOS {
        let graph = graph_of(proto);
        let clear = Codec::identity(&graph);
        let obf = obf_codec(&graph, 2);
        let msgs = encode_stream(&clear, &payload, 0xFEED).unwrap();
        let out = round_trip_via_gateways(&clear, &obf, &msgs, 0xFEED).unwrap();
        assert_eq!(out, payload, "{proto}: 64 KiB stream must round-trip");
    }
}

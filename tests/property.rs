//! Property-based tests of the system's core invariants.
//!
//! The paper's central requirement is τ⁻¹ ∘ τ = id for every composition
//! of transformations: random message values × random obfuscation plans ×
//! random serialization seeds must always round-trip.

use proptest::prelude::*;
use protoobf::{Obfuscator, Value};

/// A specification exercising every node type.
fn graph() -> protoobf::FormatGraph {
    protoobf::spec::parse_spec(
        r#"
        message P {
            u16 id;
            u16 length = len(data);
            bytes data sized_by length;
            u8 flag;
            optional extra if flag == 1 {
                u32 ev;
                bytes(3) etag;
            }
            u8 n = count(items);
            tabular items count_by n {
                u16 a;
                u16 b;
            }
            repeat words until "|" {
                ascii w until ";"
            ;}
            bytes tail rest;
        }
        "#,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_random_values_and_plans(
        plan_seed in 0u64..500,
        level in 1u32..=4,
        msg_seed in 0u64..1000,
        id in 0u64..=0xFFFF,
        data in proptest::collection::vec(any::<u8>(), 0..80),
        flag_is_one in any::<bool>(),
        ev in 0u64..=0xFFFF_FFFF,
        items in proptest::collection::vec((0u64..=0xFFFF, 0u64..=0xFFFF), 0..6),
        words in proptest::collection::vec("[a-z]{0,8}", 0..4),
        tail in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let g = graph();
        let codec = Obfuscator::new(&g).seed(plan_seed).max_per_node(level).obfuscate().unwrap();
        let mut m = codec.message_seeded(msg_seed);
        m.set_uint("id", id).unwrap();
        m.set("data", data.as_slice()).unwrap();
        m.set_uint("flag", if flag_is_one { 1 } else { 0 }).unwrap();
        if flag_is_one {
            m.set_uint("extra.ev", ev).unwrap();
            m.set("extra.etag", b"abc".as_slice()).unwrap();
        }
        for (i, (a, b)) in items.iter().enumerate() {
            m.set_uint(&format!("items[{i}].a"), *a).unwrap();
            m.set_uint(&format!("items[{i}].b"), *b).unwrap();
        }
        for (i, w) in words.iter().enumerate() {
            m.set_str(&format!("words[{i}].w"), w).unwrap();
        }
        m.set("tail", tail.as_slice()).unwrap();

        let wire = codec.serialize_seeded(&m, msg_seed ^ 0xAA).unwrap();
        let back = codec.parse(&wire).unwrap();

        prop_assert_eq!(back.get_uint("id").unwrap(), id);
        let got_data = back.get("data").unwrap();
        prop_assert_eq!(got_data.as_bytes(), data.as_slice());
        prop_assert_eq!(back.is_present("extra"), flag_is_one);
        if flag_is_one {
            prop_assert_eq!(back.get_uint("extra.ev").unwrap(), ev);
        }
        prop_assert_eq!(back.element_count("items"), items.len());
        for (i, (a, b)) in items.iter().enumerate() {
            prop_assert_eq!(back.get_uint(&format!("items[{i}].a")).unwrap(), *a);
            prop_assert_eq!(back.get_uint(&format!("items[{i}].b")).unwrap(), *b);
        }
        prop_assert_eq!(back.element_count("words"), words.len());
        for (i, w) in words.iter().enumerate() {
            prop_assert_eq!(&back.get_string(&format!("words[{i}].w")).unwrap(), w);
        }
        let got_tail = back.get("tail").unwrap();
        prop_assert_eq!(got_tail.as_bytes(), tail.as_slice());
    }

    #[test]
    fn plan_path_matches_graph_walk(
        plan_seed in 0u64..500,
        level in 0u32..=4,
        msg_seed in 0u64..1000,
        ser_seed in 0u64..1000,
        id in 0u64..=0xFFFF,
        data in proptest::collection::vec(any::<u8>(), 0..80),
        items in proptest::collection::vec((0u64..=0xFFFF, 0u64..=0xFFFF), 0..6),
    ) {
        // The compiled-plan sessions (Codec::serialize/parse) and the
        // reference graph-walk interpreters must agree byte-for-byte on
        // every spec × plan × message × serialization seed.
        let g = graph();
        let codec = if level == 0 {
            protoobf::Codec::identity(&g)
        } else {
            Obfuscator::new(&g).seed(plan_seed).max_per_node(level).obfuscate().unwrap()
        };
        let mut m = codec.message_seeded(msg_seed);
        m.set_uint("id", id).unwrap();
        m.set("data", data.as_slice()).unwrap();
        m.set_uint("flag", 0).unwrap();
        for (i, (a, b)) in items.iter().enumerate() {
            m.set_uint(&format!("items[{i}].a"), *a).unwrap();
            m.set_uint(&format!("items[{i}].b"), *b).unwrap();
        }
        m.set("tail", b"t".as_slice()).unwrap();

        let reference =
            protoobf::core::serialize::serialize_seeded(codec.obf_graph(), &m, ser_seed).unwrap();
        let planned = codec.serialize_seeded(&m, ser_seed).unwrap();
        prop_assert_eq!(&planned, &reference, "plan and graph-walk wires differ");

        let walk_back = protoobf::core::parse::parse(codec.obf_graph(), &reference).unwrap();
        let plan_back = codec.parse(&planned).unwrap();
        // Structural equality via normalized re-serialization.
        let n1 = protoobf::core::serialize::serialize_seeded(codec.obf_graph(), &plan_back, 0)
            .unwrap();
        let n2 = protoobf::core::serialize::serialize_seeded(codec.obf_graph(), &walk_back, 0)
            .unwrap();
        prop_assert_eq!(n1, n2, "plan and graph-walk parses recovered different messages");
        prop_assert_eq!(plan_back.get_uint("id").unwrap(), id);
        prop_assert_eq!(plan_back.element_count("items"), items.len());
    }

    #[test]
    fn byte_ops_invert(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        k in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        use protoobf::core::value::{apply_op, ByteOp};
        for op in [ByteOp::Add, ByteOp::Sub, ByteOp::Xor] {
            let enc = apply_op(op, &a, &k);
            let dec = apply_op(op.inverse(), &enc, &k);
            prop_assert_eq!(&dec, &a);
        }
    }

    #[test]
    fn value_uint_roundtrip(v in any::<u64>(), width in 1usize..=8) {
        use protoobf::Endian;
        let max = if width == 8 { u64::MAX } else { (1u64 << (8 * width)) - 1 };
        let v = v & max;
        for endian in [Endian::Big, Endian::Little] {
            let enc = Value::from_uint(v, width, endian).unwrap();
            prop_assert_eq!(enc.len(), width);
            prop_assert_eq!(enc.to_uint(endian), Some(v));
        }
    }

    #[test]
    fn path_parse_display_roundtrip(
        segs in proptest::collection::vec(("[a-z][a-z0-9_]{0,6}", proptest::option::of(0usize..20)), 1..5)
    ) {
        use protoobf::core::path::{Path, Segment};
        let path = Path::from_segments(
            segs.iter()
                .map(|(n, i)| match i {
                    Some(i) => Segment::indexed(n.clone(), *i),
                    None => Segment::named(n.clone()),
                })
                .collect(),
        );
        let text = path.to_string();
        let parsed: Path = text.parse().unwrap();
        prop_assert_eq!(parsed, path);
    }

    #[test]
    fn spec_print_parse_fixpoint(seed in 0u64..50) {
        // Print the (fixed) graph, reparse, reprint: must be a fixpoint.
        // The seed picks one of the embedded protocol specs.
        let text = if seed % 2 == 0 {
            protoobf::protocols::modbus::REQUEST_SPEC
        } else {
            protoobf::protocols::http::REQUEST_SPEC
        };
        let g1 = protoobf::spec::parse_spec(text).unwrap();
        let printed = protoobf::spec::to_text(&g1);
        let g2 = protoobf::spec::parse_spec(&printed).unwrap();
        prop_assert_eq!(protoobf::spec::to_text(&g2), printed);
        prop_assert_eq!(g1.len(), g2.len());
    }
}

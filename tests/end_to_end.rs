//! Cross-crate integration: specification text → obfuscation → wire →
//! recovered plain values, over the real protocol crates.

use protoobf::protocols::{http, modbus};
use protoobf::{Codec, Obfuscator};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn spec_to_wire_to_values_modbus() {
    let graph = protoobf::spec::parse_spec(modbus::REQUEST_SPEC).unwrap();
    for level in 0..=4u32 {
        let codec = if level == 0 {
            Codec::identity(&graph)
        } else {
            Obfuscator::new(&graph)
                .seed(31 + u64::from(level))
                .max_per_node(level)
                .obfuscate()
                .unwrap()
        };
        let mut rng = StdRng::seed_from_u64(u64::from(level));
        for f in modbus::Function::ALL {
            let msg = modbus::build_request(&codec, f, &mut rng);
            let tid = msg.get_uint("transaction_id").unwrap();
            let wire = codec.serialize_seeded(&msg, 5).unwrap();
            let back = codec.parse(&wire).unwrap();
            assert_eq!(back.get_uint("transaction_id").unwrap(), tid);
            assert_eq!(back.get_uint("pdu.function").unwrap(), u64::from(f.code()));
            assert!(back.is_present(&format!("pdu.{}", f.body())));
        }
    }
}

#[test]
fn spec_to_wire_to_values_http() {
    let graph = protoobf::spec::parse_spec(http::REQUEST_SPEC).unwrap();
    for level in 0..=4u32 {
        let codec = if level == 0 {
            Codec::identity(&graph)
        } else {
            Obfuscator::new(&graph)
                .seed(77 + u64::from(level))
                .max_per_node(level)
                .obfuscate()
                .unwrap()
        };
        let mut rng = StdRng::seed_from_u64(u64::from(level) + 10);
        for _ in 0..8 {
            let msg = http::build_request(&codec, &mut rng);
            let method = msg.get_string("method").unwrap();
            let uri = msg.get_string("uri").unwrap();
            let headers = msg.element_count("headers");
            let wire = codec.serialize_seeded(&msg, 5).unwrap();
            let back = codec.parse(&wire).unwrap();
            assert_eq!(back.get_string("method").unwrap(), method);
            assert_eq!(back.get_string("uri").unwrap(), uri);
            assert_eq!(back.element_count("headers"), headers);
            for i in 0..headers {
                assert_eq!(
                    back.get_string(&format!("headers[{i}].name")).unwrap(),
                    msg.get_string(&format!("headers[{i}].name")).unwrap()
                );
            }
        }
    }
}

#[test]
fn accessor_interface_is_plan_independent() {
    // The same core-application code must work against any plan: build the
    // same message through 10 different codecs and check all wires decode
    // to identical plain values.
    let graph = protoobf::spec::parse_spec(
        r#"
        message M {
            u16 id;
            u16 length = len(data);
            bytes data sized_by length;
            ascii tag until ";";
            bytes rest_field rest;
        }
        "#,
    )
    .unwrap();
    for seed in 0..10u64 {
        let codec = Obfuscator::new(&graph).seed(seed).max_per_node(3).obfuscate().unwrap();
        let mut msg = codec.message_seeded(1);
        msg.set_uint("id", 4242).unwrap();
        msg.set("data", b"payload bytes".as_slice()).unwrap();
        msg.set_str("tag", "v1").unwrap();
        msg.set("rest_field", b"trailer".as_slice()).unwrap();
        let wire = codec.serialize_seeded(&msg, 2).unwrap();
        let back = codec.parse(&wire).unwrap();
        assert_eq!(back.get_uint("id").unwrap(), 4242);
        assert_eq!(back.get("data").unwrap().as_bytes(), b"payload bytes");
        assert_eq!(back.get_string("tag").unwrap(), "v1");
        assert_eq!(back.get("rest_field").unwrap().as_bytes(), b"trailer");
    }
}

#[test]
fn wire_diversity_across_plans() {
    // Regenerating the protocol (the paper's periodic redeployment) must
    // actually change the bytes.
    let graph = protoobf::spec::parse_spec(modbus::REQUEST_SPEC).unwrap();
    let mut wires = std::collections::BTreeSet::new();
    for seed in 0..8u64 {
        let codec = Obfuscator::new(&graph).seed(seed).max_per_node(2).obfuscate().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let msg = modbus::build_request(&codec, modbus::Function::ReadCoils, &mut rng);
        wires.insert(codec.serialize_seeded(&msg, 4).unwrap());
    }
    assert!(wires.len() >= 7, "plans should produce distinct dialects, got {}", wires.len());
}

#[test]
fn codegen_follows_the_runtime_codec() {
    // The generated C library reflects the same obfuscation graph the
    // runtime interprets: every obf node has a parse function.
    let graph = protoobf::spec::parse_spec(http::REQUEST_SPEC).unwrap();
    let codec = Obfuscator::new(&graph).seed(3).max_per_node(2).obfuscate().unwrap();
    let lib = protoobf::codegen::generate(&codec);
    assert_eq!(lib.source.matches("static int parse_").count(), codec.obf_graph().len());
    let metrics = protoobf::codegen::measure(&lib);
    assert!(metrics.callgraph_size > 10);
}

#[test]
fn pre_attack_quality_degrades_end_to_end() {
    use protoobf::pre::align::{similarity_matrix, ScoreParams};
    use protoobf::pre::cluster::upgma;
    use protoobf::pre::score::adjusted_rand_index;
    use protoobf::protocols::corpus;

    let graph = modbus::request_graph();
    let score = |codec: &Codec| {
        let mut rng = StdRng::seed_from_u64(8);
        let samples = corpus::modbus_requests(codec, 6, &mut rng);
        let msgs: Vec<&[u8]> = samples.iter().map(|s| s.wire.as_slice()).collect();
        let labels: Vec<&str> = samples.iter().map(|s| s.label.as_str()).collect();
        let clusters = upgma(&similarity_matrix(&msgs, ScoreParams::default()), 0.55);
        adjusted_rand_index(&clusters, &labels)
    };
    let plain_ari = score(&Codec::identity(&graph));
    let obf = Obfuscator::new(&graph).seed(13).max_per_node(2).obfuscate().unwrap();
    let obf_ari = score(&obf);
    assert!(
        plain_ari > obf_ari + 0.1,
        "classification must degrade: plain {plain_ari:.2} vs obf {obf_ari:.2}"
    );
}

//! Differential fuzzing of the two parser implementations.
//!
//! Valid wires are sampled per spec × obfuscation plan, then mutated
//! (byte flips, truncations, insertions, deletions). For every input —
//! valid or hostile — the compiled-plan session (`parse_in_place`) and
//! the reference graph-walk parser (`core::parse::parse`) must **agree**:
//! both fail, or both succeed with structurally equal messages. Neither
//! may panic, hang, or overflow.
//!
//! The generated case count is bounded (override with the
//! `PROTOOBF_FUZZ_CASES` environment variable) so the harness stays fast
//! in CI; `tests/corpus/` pins previously interesting inputs as
//! regressions, exercised by `corpus_agreement` on every run.

use proptest::prelude::*;
use protoobf::core::sample::random_message;
use protoobf::core::{parse as parse_mod, serialize as serialize_mod};
use protoobf::protocols::{dns, http, modbus};
use protoobf::{Codec, FormatGraph, Obfuscator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The spec corpus, indexable by the fuzzer. Order is part of the corpus
/// file format (`tests/corpus/<proto>-l<level>-p<seed>-*.bin`).
const PROTOS: [&str; 6] = ["dnsq", "dnsr", "httpq", "httpr", "modq", "modr"];

fn graph_of(proto: &str) -> FormatGraph {
    match proto {
        "dnsq" => dns::query_graph(),
        "dnsr" => dns::response_graph(),
        "httpq" => http::request_graph(),
        "httpr" => http::response_graph(),
        "modq" => modbus::request_graph(),
        "modr" => modbus::response_graph(),
        other => panic!("unknown proto tag {other:?}"),
    }
}

fn codec_for(graph: &FormatGraph, level: u32, seed: u64) -> Codec {
    if level == 0 {
        Codec::identity(graph)
    } else {
        Obfuscator::new(graph).seed(seed).max_per_node(level).obfuscate().unwrap()
    }
}

/// Normalized bytes of a message: reference-serialized with a fixed seed.
fn normalize(codec: &Codec, msg: &protoobf::Message<'_>) -> Vec<u8> {
    serialize_mod::serialize_seeded(codec.obf_graph(), msg, 0).expect("normalization serializes")
}

/// Runs both parsers over `bytes` and checks they agree. Returns an error
/// description on disagreement.
fn check_agreement(codec: &Codec, bytes: &[u8]) -> Result<(), String> {
    let walk = parse_mod::parse(codec.obf_graph(), bytes);
    let mut session = codec.parser();
    let plan = session.parse_in_place(bytes);
    match (walk, plan) {
        (Ok(w), Ok(_)) => {
            let p = session.take_message();
            let (nw, np) = (normalize(codec, &w), normalize(codec, &p));
            if nw != np {
                return Err(format!(
                    "both parsers accepted {} bytes but recovered different structures\n  \
                     walk: {nw:02x?}\n  plan: {np:02x?}",
                    bytes.len()
                ));
            }
            Ok(())
        }
        (Err(_), Err(_)) => Ok(()),
        (Ok(_), Err(e)) => {
            Err(format!("graph-walk accepted but plan session rejected ({e}); input: {bytes:02x?}"))
        }
        (Err(e), Ok(_)) => {
            Err(format!("plan session accepted but graph-walk rejected ({e}); input: {bytes:02x?}"))
        }
    }
}

/// One mutation instruction: `kind` selects flip/truncate/insert/delete,
/// `pos`/`val` parameterize it (reduced modulo the current length).
fn mutate(wire: &mut Vec<u8>, kind: u8, pos: usize, val: u8) {
    if wire.is_empty() {
        wire.push(val);
        return;
    }
    match kind % 4 {
        0 => {
            let p = pos % wire.len();
            wire[p] ^= val | 1; // always changes the byte
        }
        1 => {
            let p = pos % (wire.len() + 1);
            wire.truncate(p);
        }
        2 => {
            let p = pos % (wire.len() + 1);
            wire.insert(p, val);
        }
        _ => {
            let p = pos % wire.len();
            wire.remove(p);
        }
    }
}

fn fuzz_cases() -> u32 {
    std::env::var("PROTOOBF_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(96)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    #[test]
    fn mutated_wires_parse_identically(
        proto_idx in 0usize..6,
        level in 0u32..=3,
        plan_seed in 0u64..3,
        msg_seed in any::<u64>(),
        mutations in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u8>()), 0..5),
    ) {
        let graph = graph_of(PROTOS[proto_idx]);
        let codec = codec_for(&graph, level, plan_seed);
        let mut rng = StdRng::seed_from_u64(msg_seed);
        let msg = random_message(&codec, &mut rng);
        let mut wire = serialize_mod::serialize_seeded(codec.obf_graph(), &msg, msg_seed ^ 0x5EED)
            .expect("sampled messages serialize");

        // The pristine wire must parse identically (and successfully).
        prop_assert!(
            parse_mod::parse(codec.obf_graph(), &wire).is_ok(),
            "valid wire must parse"
        );
        if let Err(e) = check_agreement(&codec, &wire) {
            prop_assert!(false, "{} l{level} p{plan_seed} valid wire: {e}", PROTOS[proto_idx]);
        }

        // Mutated wires: agreement, not success.
        for (kind, pos, val) in &mutations {
            mutate(&mut wire, *kind, *pos, *val);
            if let Err(e) = check_agreement(&codec, &wire) {
                prop_assert!(
                    false,
                    "{} l{level} p{plan_seed} after {:?}: {e}",
                    PROTOS[proto_idx],
                    mutations
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// plan-aware engine (`core::fuzz`)
// ---------------------------------------------------------------------------

use protoobf::core::fuzz::{fuzz_codec, FuzzConfig};

/// The grammar-aware engine behind `protoobf fuzz`: mutations are aimed
/// at the slot boundaries of traced serializations instead of uniform
/// byte positions, and every input additionally runs the transcode
/// differential (compiled copy programs vs reference walk). Shares the
/// `PROTOOBF_FUZZ_CASES` budget with the proptest harness above so the
/// CI stress matrix drives both from one knob.
#[test]
fn plan_aware_engine_agrees_across_the_builtin_corpus() {
    let per_config = fuzz_cases().div_ceil(8).max(8);
    for (pi, proto) in PROTOS.iter().enumerate() {
        for level in [0u32, 2] {
            let graph = graph_of(proto);
            let codec = codec_for(&graph, level, pi as u64);
            let cfg = FuzzConfig {
                cases: per_config,
                seed: 0xD1FF ^ ((pi as u64) << 8) ^ u64::from(level),
                ..FuzzConfig::default()
            };
            let report = fuzz_codec(&codec, &cfg);
            assert!(
                report.divergences.is_empty(),
                "{proto} l{level}: {} divergence(s), first: {}",
                report.divergences.len(),
                report.divergences[0].detail
            );
            assert!(report.accepted > 0, "{proto} l{level}: pristine wires must parse");
            assert!(
                report.signatures > 1,
                "{proto} l{level}: mutation corpus collapsed to one coverage signature"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// regression corpus
// ---------------------------------------------------------------------------

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Parses `<proto>-l<level>-p<planseed>-<desc>.bin` into a codec config.
fn corpus_config(name: &str) -> Option<(String, u32, u64)> {
    let mut parts = name.strip_suffix(".bin")?.splitn(4, '-');
    let proto = parts.next()?.to_string();
    let level = parts.next()?.strip_prefix('l')?.parse().ok()?;
    let seed = parts.next()?.strip_prefix('p')?.parse().ok()?;
    Some((proto, level, seed))
}

#[test]
fn corpus_agreement() {
    let dir = corpus_dir();
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&dir).expect("tests/corpus exists") {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.ends_with(".bin") {
            continue;
        }
        let (proto, level, plan_seed) =
            corpus_config(&name).unwrap_or_else(|| panic!("bad corpus file name {name:?}"));
        let graph = graph_of(&proto);
        let codec = codec_for(&graph, level, plan_seed);
        let bytes = std::fs::read(&path).unwrap();
        if let Err(e) = check_agreement(&codec, &bytes) {
            panic!("corpus {name}: {e}");
        }
        checked += 1;
    }
    assert!(checked >= 6, "regression corpus went missing (found {checked} files)");
}

/// Regenerates the checked-in corpus (`cargo test -p protoobf --test
/// fuzz_differential -- --ignored regen_corpus`). Emits, per config, the
/// valid wire plus deterministic truncation/flip/extension variants.
#[test]
#[ignore]
fn regen_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (proto, level, plan_seed) in
        [("dnsr", 2u32, 0u64), ("httpq", 2, 1), ("modq", 3, 0), ("dnsq", 1, 2)]
    {
        let graph = graph_of(proto);
        let codec = codec_for(&graph, level, plan_seed);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let msg = random_message(&codec, &mut rng);
        let wire = serialize_mod::serialize_seeded(codec.obf_graph(), &msg, 0xC0FFEE).unwrap();
        let stem = format!("{proto}-l{level}-p{plan_seed}");
        let write = |desc: &str, bytes: &[u8]| {
            std::fs::write(dir.join(format!("{stem}-{desc}.bin")), bytes).unwrap();
        };
        write("valid", &wire);
        write("trunc", &wire[..wire.len() / 2]);
        let mut flipped = wire.clone();
        flipped[wire.len() / 3] ^= 0x80;
        write("flip", &flipped);
        let mut extended = wire.clone();
        extended.extend_from_slice(&[0xAA; 7]);
        write("extend", &extended);
        write("empty", &[]);
    }
}

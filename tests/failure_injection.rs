//! Failure injection: corrupted, truncated or cross-plan messages must
//! produce [`protoobf::ParseError`]s — never panics, hangs or silent
//! acceptance of structurally inconsistent data.

use proptest::prelude::*;
use protoobf::protocols::modbus;
use protoobf::{Codec, Obfuscator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn wire_fixture(level: u32, seed: u64) -> (Codec, Vec<u8>) {
    let graph = modbus::request_graph();
    let codec = if level == 0 {
        Codec::identity(&graph)
    } else {
        Obfuscator::new(&graph).seed(seed).max_per_node(level).obfuscate().unwrap()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let msg = modbus::build_request(&codec, modbus::Function::WriteMultipleRegisters, &mut rng);
    let wire = codec.serialize_seeded(&msg, seed).unwrap();
    (codec, wire)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_never_panics(level in 0u32..=3, seed in 0u64..50, cut_ratio in 0.0f64..1.0) {
        let (codec, wire) = wire_fixture(level, seed);
        let cut = ((wire.len() as f64) * cut_ratio) as usize;
        if cut < wire.len() {
            // Must error (shorter message cannot satisfy the structure and
            // its auto-length sanity checks) — and must not panic.
            prop_assert!(codec.parse(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn bitflips_never_panic(level in 0u32..=3, seed in 0u64..50, pos_ratio in 0.0f64..1.0, bit in 0u8..8) {
        let (codec, wire) = wire_fixture(level, seed);
        let mut corrupted = wire.clone();
        let pos = (((wire.len() - 1) as f64) * pos_ratio) as usize;
        corrupted[pos] ^= 1 << bit;
        // Either a clean error or a structurally coherent (possibly
        // different) message; both are acceptable, panics are not.
        if let Ok(m) = codec.parse(&corrupted) {
            let _ = m.get_uint("transaction_id");
            let _ = m.get_uint("pdu.function");
        }
    }

    #[test]
    fn extra_bytes_detected(level in 0u32..=3, seed in 0u64..30, extra in 1usize..8) {
        let (codec, wire) = wire_fixture(level, seed);
        let mut longer = wire.clone();
        longer.extend(std::iter::repeat_n(0xEE, extra));
        // The Modbus graph ends with optional bodies pinned by the auto
        // length field, so appended garbage must be rejected.
        prop_assert!(codec.parse(&longer).is_err());
    }

    #[test]
    fn cross_plan_parse_is_safe(seed_a in 0u64..30, seed_b in 0u64..30, level in 1u32..=3) {
        prop_assume!(seed_a != seed_b);
        let (codec_a, wire) = wire_fixture(level, seed_a);
        let (codec_b, _) = wire_fixture(level, seed_b);
        drop(codec_a);
        // Parsing with a mismatched plan may fail or mis-decode, never
        // panic.
        if let Ok(m) = codec_b.parse(&wire) {
            let _ = m.get_uint("transaction_id");
        }
    }

    #[test]
    fn random_garbage_never_panics(level in 0u32..=3, seed in 0u64..20, garbage in proptest::collection::vec(any::<u8>(), 0..200)) {
        let (codec, _) = wire_fixture(level, seed);
        if let Ok(m) = codec.parse(&garbage) {
            let _ = m.get_uint("transaction_id");
        }
    }
}

#[test]
fn empty_input_is_an_error() {
    let (codec, _) = wire_fixture(2, 1);
    assert!(codec.parse(&[]).is_err());
}

#[test]
fn setting_after_parse_allows_reserialization() {
    // A parsed message can be amended and re-sent (gateway scenario).
    let (codec, wire) = wire_fixture(1, 9);
    let mut msg = codec.parse(&wire).unwrap();
    msg.set_uint("transaction_id", 0xBEEF).unwrap();
    let wire2 = codec.serialize_seeded(&msg, 77).unwrap();
    let back = codec.parse(&wire2).unwrap();
    assert_eq!(back.get_uint("transaction_id").unwrap(), 0xBEEF);
}

//! Whole-pipeline fuzz over *random specifications*.
//!
//! The shipped protocols exercise fixed shapes; this suite generates
//! hundreds of random (but valid) format graphs, obfuscates each at levels
//! 0–3, fills random messages with the generic sampler, and checks two
//! invariants:
//!
//! 1. **Round-trip**: `parse(serialize(m))` recovers a message that
//! 2. **Re-serializes byte-identically**: the parsed message carries the
//!    same wire shares, so serializing it again reproduces the original
//!    bytes exactly (plain values, shares, pads and all).

use protoobf::core::graph::{AutoValue, Boundary, Condition, GraphBuilder, Predicate, StopRule};
use protoobf::core::sample::random_message;
use protoobf::protocols;
use protoobf::{Codec, FormatGraph, Obfuscator};
use protoobf::{TerminalKind, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delimiters for delimited fields (alphanumeric-free, so sampler values
/// can never contain them).
const DELIMS: &[&[u8]] = &[b";", b":", b"|", b"~~"];
/// Repetition terminators, distinct from every field delimiter.
const TERMS: &[&[u8]] = &[b"\r\n", b"##"];

struct Gen {
    rng: StdRng,
    builder: GraphBuilder,
    /// u8 fields usable as optional-condition subjects, per nesting level.
    subjects: Vec<protoobf::NodeId>,
    nodes: usize,
}

impl Gen {
    fn fresh(&mut self, tag: &str) -> String {
        self.nodes += 1;
        format!("{tag}{}", self.nodes)
    }

    /// Adds 2–5 random fields under `parent`. `in_element` suppresses
    /// rest-of-window fields (they need the message tail) and nested
    /// repetitions (kept shallow for test speed).
    fn fields(&mut self, parent: protoobf::NodeId, depth: usize, in_element: bool) {
        let n = self.rng.gen_range(2..=5usize);
        for slot in 0..n {
            let first = slot == 0;
            match self.pick(depth, in_element, first) {
                0 => {
                    let w = *[1usize, 2, 4].get(self.rng.gen_range(0..3usize)).expect("in range");
                    let name = self.fresh("u");
                    let id = self.builder.uint_be(parent, name, w);
                    if w == 1 {
                        self.subjects.push(id);
                    }
                }
                1 => {
                    let k = self.rng.gen_range(1..=6usize);
                    let name = self.fresh("fx");
                    self.builder.terminal(parent, name, TerminalKind::Bytes, Boundary::Fixed(k));
                }
                2 => {
                    let d = DELIMS[self.rng.gen_range(0..DELIMS.len())];
                    let name = self.fresh("tx");
                    self.builder.terminal(
                        parent,
                        name,
                        TerminalKind::Ascii,
                        Boundary::Delimited(d.to_vec()),
                    );
                }
                3 => {
                    // Length-prefixed pair.
                    let lname = self.fresh("len");
                    let len = self.builder.uint_be(parent, lname, 2);
                    let dname = self.fresh("dat");
                    let data = self.builder.terminal(
                        parent,
                        dname,
                        TerminalKind::Bytes,
                        Boundary::Length(len),
                    );
                    self.builder.set_auto(len, AutoValue::LengthOf(data));
                }
                4 => {
                    // Optional keyed on an earlier u8 subject.
                    let subject = self.subjects[self.rng.gen_range(0..self.subjects.len())];
                    let threshold: u8 = self.rng.gen_range(64..192);
                    let name = self.fresh("opt");
                    let opt = self.builder.optional(
                        parent,
                        name,
                        Condition {
                            subject,
                            predicate: Predicate::OneOf(
                                (0..threshold).map(|v| Value::from_bytes(vec![v])).collect(),
                            ),
                        },
                    );
                    let bname = self.fresh("ob");
                    let body = self.builder.sequence(opt, bname, Boundary::Delegated);
                    // Subjects declared inside the optional body are not
                    // visible outside it (validation rejects such refs).
                    let saved = self.subjects.clone();
                    self.fields(body, depth + 1, in_element);
                    self.subjects = saved;
                }
                5 => {
                    // Counted tabular with auto counter.
                    let cname = self.fresh("cnt");
                    let counter = self.builder.uint_be(parent, cname, 1);
                    let tname = self.fresh("tab");
                    let tab = self.builder.tabular(parent, tname, counter);
                    self.builder.set_auto(counter, AutoValue::CounterOf(tab));
                    let ename = self.fresh("el");
                    let elem = self.builder.sequence(tab, ename, Boundary::Delegated);
                    // Element-local subjects are out of scope outside the
                    // tabular.
                    let saved = self.subjects.clone();
                    self.fields(elem, depth + 1, true);
                    self.subjects = saved;
                }
                _ => {
                    // Terminated repetition; element must start with a
                    // delimited field so the terminator check stays
                    // unambiguous (the sampler emits alphanumeric values).
                    let term = TERMS[self.rng.gen_range(0..TERMS.len())];
                    let rname = self.fresh("rep");
                    let rep = self.builder.repetition(
                        parent,
                        rname,
                        StopRule::Terminator(term.to_vec()),
                        Boundary::Delegated,
                    );
                    let ename = self.fresh("re");
                    let elem = self.builder.sequence(rep, ename, Boundary::Delegated);
                    let kname = self.fresh("tx");
                    self.builder.terminal(
                        elem,
                        kname,
                        TerminalKind::Ascii,
                        Boundary::Delimited(b";".to_vec()),
                    );
                    let vname = self.fresh("u");
                    self.builder.uint_be(elem, vname, 2);
                }
            }
        }
    }

    fn pick(&mut self, depth: usize, in_element: bool, first: bool) -> usize {
        loop {
            let c = self.rng.gen_range(0..7usize);
            let nested = matches!(c, 4..=6);
            if nested && (depth >= 2 || self.nodes > 24) {
                continue;
            }
            if c == 4 && self.subjects.is_empty() {
                continue;
            }
            // Keep repetition elements' first field deterministic enough:
            // handled inside the repetition arm itself; here only avoid
            // leading nested repetitions inside elements.
            if in_element && c == 6 {
                continue;
            }
            let _ = first;
            return c;
        }
    }
}

fn random_graph(seed: u64) -> FormatGraph {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        builder: GraphBuilder::new(format!("rand{seed}")),
        subjects: Vec::new(),
        nodes: 0,
    };
    let root = g.builder.root_sequence("m", Boundary::End);
    g.fields(root, 0, false);
    if g.rng.gen_bool(0.5) {
        let name = g.fresh("tail");
        g.builder.terminal(root, name, TerminalKind::Bytes, Boundary::End);
    }
    g.builder.build().expect("generated graphs are valid by construction")
}

#[test]
fn random_specs_roundtrip_and_reserialize_identically() {
    let mut failures = Vec::new();
    for seed in 0..120u64 {
        let graph = random_graph(seed);
        for level in 0..=3u32 {
            let codec = if level == 0 {
                Codec::identity(&graph)
            } else {
                Obfuscator::new(&graph).seed(seed ^ 0xABCD).max_per_node(level).obfuscate().unwrap()
            };
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31) + u64::from(level));
            for round in 0..2 {
                let msg = random_message(&codec, &mut rng);
                let wire = match codec.serialize_seeded(&msg, seed) {
                    Ok(w) => w,
                    Err(e) => {
                        failures.push(format!("seed {seed} level {level} ser: {e}"));
                        continue;
                    }
                };
                let back = match codec.parse(&wire) {
                    Ok(b) => b,
                    Err(e) => {
                        failures
                            .push(format!("seed {seed} level {level} round {round} parse: {e}"));
                        continue;
                    }
                };
                // Normalized re-serialization stability: auto fields are
                // rematerialized on every serialize (their split shares are
                // fresh), so stability is required from the second pass on:
                // serialize(parse(serialize(back))) == serialize(back).
                let wire2 = match codec.serialize_seeded(&back, 0) {
                    Ok(w) => w,
                    Err(e) => {
                        failures.push(format!("seed {seed} level {level} reser: {e}"));
                        continue;
                    }
                };
                let back2 = match codec.parse(&wire2) {
                    Ok(b) => b,
                    Err(e) => {
                        failures.push(format!("seed {seed} level {level} reparse: {e}"));
                        continue;
                    }
                };
                match codec.serialize_seeded(&back2, 0) {
                    Ok(wire3) => {
                        if wire3 != wire2 {
                            failures.push(format!(
                                "seed {seed} level {level}: normalized re-serialization diverged"
                            ));
                        }
                    }
                    Err(e) => failures.push(format!("seed {seed} level {level} reser2: {e}")),
                }
            }
        }
    }
    assert!(failures.is_empty(), "{} failures:\n{}", failures.len(), failures.join("\n"));
}

#[test]
fn shipped_specs_also_reserialize_identically() {
    // The stability invariant on the real protocols.
    let cases: Vec<FormatGraph> = vec![
        protocols::modbus::request_graph(),
        protocols::modbus::response_graph(),
        protocols::http::request_graph(),
        protocols::http::response_graph(),
        protocols::dns::query_graph(),
        protocols::dns::response_graph(),
    ];
    for (i, graph) in cases.iter().enumerate() {
        for level in [0u32, 2] {
            let codec = if level == 0 {
                Codec::identity(graph)
            } else {
                Obfuscator::new(graph).seed(i as u64).max_per_node(level).obfuscate().unwrap()
            };
            let mut rng = StdRng::seed_from_u64(i as u64 + 100);
            let msg = random_message(&codec, &mut rng);
            if let Ok(wire) = codec.serialize_seeded(&msg, 5) {
                let back = codec
                    .parse(&wire)
                    .unwrap_or_else(|e| panic!("{} level {level}: {e}", graph.name()));
                let wire2 = codec.serialize_seeded(&back, 0).unwrap();
                let back2 = codec.parse(&wire2).unwrap();
                let wire3 = codec.serialize_seeded(&back2, 0).unwrap();
                assert_eq!(wire3, wire2, "{} level {level}", graph.name());
            }
        }
    }
}

//! The tentpole claim of the resilience trajectory (paper §VII-D),
//! pinned as a test: the PRE inference attack must succeed against
//! plaintext traffic of the builtin protocols and must score measurably
//! worse once spec-level obfuscation is applied.
//!
//! Sample counts are kept small here so the test stays in tier-1 time
//! budgets; `protoobf resilience` (and the CI resilience job) run the
//! same pipeline at full size and export `BENCH_resilience.json`.

use protoobf::resilience::{
    export_json, score_level, score_level_cover, score_level_tunnel, score_trajectory, summarize,
};

const SEED: u64 = 0xD5C_0BF;

#[test]
fn obfuscation_degrades_the_inference_attack() {
    let plain = score_level(0, 8, SEED);
    let obfuscated = score_level(2, 8, SEED);

    // Level 0: repeated application traffic re-serializes byte-identically,
    // so alignment clusters it and recovers mostly static formats.
    assert!(
        plain.attack.score > 0.5,
        "attack must succeed on plaintext traffic (score = {:.3})",
        plain.attack.score
    );
    assert!(plain.attack.ari > 0.0, "plaintext clustering must beat chance");

    // Level 2: pads and random shares are re-drawn per message, so the
    // same application traffic stops aligning.
    assert!(
        obfuscated.attack.score < plain.attack.score - 0.1,
        "obfuscation must measurably degrade the attacker: level 0 scored {:.3}, \
         level 2 scored {:.3}",
        plain.attack.score,
        obfuscated.attack.score
    );
}

/// The covert tunnel's indistinguishability claim, pinned against the
/// PRE attacker: carrying a live payload stream in the carrier slots
/// must not make the mixed trace easier to align, cluster or recover
/// than payload-free cover traffic sampled the same way (same level,
/// same carrier pins, same per-message freshness). The tunnel preserves
/// every carrier instance's sampled length and leaves cover slots
/// sampled, so the wire-shape features the attack feeds on are
/// unchanged; what *does* shift is carrier content entropy (uniform
/// payload bytes instead of low-entropy sampler text), which moves the
/// attacker's score down, never up — hence the one-sided margin.
#[test]
fn tunnel_streams_score_no_better_than_cover_traffic() {
    for level in [0u32, 2] {
        let cover = score_level_cover(level, 16, SEED);
        let tunnel = score_level_tunnel(level, 16, SEED);
        assert!(
            tunnel.attack.score <= cover.attack.score + 0.1,
            "level {level}: the attacker must not score tunnel streams above plain \
             cover traffic (cover {:.3}, tunnel {:.3})",
            cover.attack.score,
            tunnel.attack.score
        );
    }
}

#[test]
fn trajectory_is_complete_and_bounded() {
    let report = score_trajectory(2, 6, SEED);
    assert_eq!(report.samples_per_protocol, 6);
    assert_eq!(report.levels.len(), 3);
    for (i, cell) in report.levels.iter().enumerate() {
        assert_eq!(cell.level, i as u32);
        let a = &cell.attack;
        assert_eq!(a.messages, 6 * 6, "six builtin protocols × six samples");
        assert_eq!(a.types, 6);
        assert!((0.0..=1.0).contains(&a.score), "score out of range: {}", a.score);
        assert!((0.0..=1.0).contains(&a.purity));
        assert!((0.0..=1.0).contains(&a.static_fraction));
        assert!((0.0..=1.0).contains(&a.random_fraction));
        assert!((0.0..=8.0).contains(&a.mean_entropy));
        assert!(!summarize(cell).is_empty());
    }
}

#[test]
fn exported_json_carries_every_cell() {
    let report = score_trajectory(1, 4, SEED);
    let json = export_json(&report);
    assert!(json.contains("\"prefix\": \"resilience\""));
    assert!(json.contains("\"samples_per_protocol\": 4"));
    assert!(json.contains("\"name\": \"resilience/level-0\""));
    assert!(json.contains("\"name\": \"resilience/level-1\""));
    for key in ["score", "ari", "purity", "static_fraction", "mean_entropy", "random_fraction"] {
        assert!(json.contains(&format!("\"{key}\"")), "missing {key} in export");
    }
    // Structural sanity: braces balance, one result line per cell.
    assert_eq!(json.matches("\"name\"").count(), 2);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

//! Differential tests of the compiled-plan codec path against the
//! reference graph-walk interpreters.
//!
//! `Codec::serialize`/`Codec::parse` run compiled-plan sessions
//! ([`protoobf::core::plan::CodecPlan`]); the free functions
//! `core::serialize::serialize_seeded` / `core::parse::parse` interpret
//! the obfuscation graph directly. For every spec × obfuscation plan ×
//! message the two must produce **byte-identical** wire output and
//! messages that round-trip to the same values. Sessions are reused
//! across messages to also catch stale scratch-state bugs.

use protoobf::core::sample::random_message;
use protoobf::core::{parse as parse_mod, serialize as serialize_mod};
use protoobf::protocols::{dns, http, modbus};
use protoobf::{Codec, FormatGraph, Message, Obfuscator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn codec_for(graph: &FormatGraph, level: u32, seed: u64) -> Codec {
    if level == 0 {
        Codec::identity(graph)
    } else {
        Obfuscator::new(graph).seed(seed).max_per_node(level).obfuscate().unwrap()
    }
}

/// Normalized bytes of a message: reference-serialized with a fixed seed.
/// Two messages carrying the same wires/presence/counts normalize
/// identically, so this is a structural equality check.
fn normalize(codec: &Codec, msg: &Message<'_>) -> Vec<u8> {
    serialize_mod::serialize_seeded(codec.obf_graph(), msg, 0).expect("normalization serializes")
}

/// Serializes through both paths (same seed) and parses through both
/// paths, asserting byte and structural equality at every step.
fn assert_equivalent(codec: &Codec, msg: &Message<'_>, seed: u64, what: &str) {
    let reference = serialize_mod::serialize_seeded(codec.obf_graph(), msg, seed)
        .unwrap_or_else(|e| panic!("{what}: reference serialize failed: {e}"));
    let planned = codec
        .serialize_seeded(msg, seed)
        .unwrap_or_else(|e| panic!("{what}: plan serialize failed: {e}"));
    assert_eq!(planned, reference, "{what}: plan and graph-walk wires differ");

    let ref_parsed = parse_mod::parse(codec.obf_graph(), &reference)
        .unwrap_or_else(|e| panic!("{what}: reference parse failed: {e}"));
    let plan_parsed =
        codec.parse(&planned).unwrap_or_else(|e| panic!("{what}: plan parse failed: {e}"));
    assert_eq!(
        normalize(codec, &plan_parsed),
        normalize(codec, &ref_parsed),
        "{what}: plan and graph-walk parses recovered different messages"
    );
}

#[test]
fn plan_matches_graph_walk_on_protocol_corpus() {
    let cases: Vec<(&str, FormatGraph)> = vec![
        ("modbus-req", modbus::request_graph()),
        ("modbus-resp", modbus::response_graph()),
        ("http-req", http::request_graph()),
        ("http-resp", http::response_graph()),
        ("dns-query", dns::query_graph()),
        ("dns-resp", dns::response_graph()),
    ];
    for (name, graph) in &cases {
        for level in 0..=3u32 {
            for plan_seed in 0..3u64 {
                let codec = codec_for(graph, level, plan_seed);
                let mut rng = StdRng::seed_from_u64(plan_seed * 31 + u64::from(level));
                for round in 0..3u64 {
                    let msg = random_message(&codec, &mut rng);
                    let what = format!("{name} level={level} plan={plan_seed} round={round}");
                    assert_equivalent(&codec, &msg, round ^ 0x5EED, &what);
                }
            }
        }
    }
}

#[test]
fn reused_sessions_agree_with_fresh_ones() {
    // One serializer/parser pair per codec, driven over many different
    // messages: reused scratch state must never leak between messages.
    let graph = dns::response_graph();
    for level in [0u32, 2, 3] {
        let codec = codec_for(&graph, level, 7);
        let mut serializer = codec.serializer();
        let mut parser = codec.parser();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(99 + u64::from(level));
        for round in 0..20u64 {
            let msg = random_message(&codec, &mut rng);
            let seed = round.wrapping_mul(0x9E37_79B9);
            serializer
                .serialize_into_seeded(&msg, &mut out, seed)
                .unwrap_or_else(|e| panic!("level {level} round {round}: serialize: {e}"));
            let reference = serialize_mod::serialize_seeded(codec.obf_graph(), &msg, seed)
                .unwrap_or_else(|e| panic!("level {level} round {round}: reference: {e}"));
            assert_eq!(out, reference, "level {level} round {round}: session wire diverged");

            let parsed = parser
                .parse_in_place(&out)
                .unwrap_or_else(|e| panic!("level {level} round {round}: parse: {e}"));
            let ref_parsed = parse_mod::parse(codec.obf_graph(), &reference).unwrap();
            assert_eq!(
                serialize_mod::serialize_seeded(codec.obf_graph(), parsed, 0).unwrap(),
                serialize_mod::serialize_seeded(codec.obf_graph(), &ref_parsed, 0).unwrap(),
                "level {level} round {round}: session parse diverged"
            );
        }
    }
}

#[test]
fn modbus_function_sweep_is_equivalent() {
    let graph = modbus::request_graph();
    for level in 0..=4u32 {
        let codec = codec_for(&graph, level, 42);
        let mut rng = StdRng::seed_from_u64(u64::from(level));
        for f in modbus::Function::ALL {
            let msg = modbus::build_request(&codec, f, &mut rng);
            assert_equivalent(&codec, &msg, 11, &format!("modbus {f:?} level={level}"));
        }
    }
}

#!/usr/bin/env bash
# Loopback smoke test of the full gateway deployment: for each bundled
# protocol, spawn echo-server + decode-gateway + encode-gateway as real
# processes on 127.0.0.1 and round-trip a corpus of random messages
# through real sockets. Every process self-terminates via --accept-limit;
# the client is additionally bounded by `timeout`.
#
#   PROTOOBF_BIN    binary to test (default target/release/protoobf)
#   SMOKE_COUNT     messages per protocol (default 64)
#   SMOKE_TIMEOUT   client timeout seconds (default 120)
#   SMOKE_BASE_PORT first loopback port (default 19750)
set -euo pipefail

BIN="${PROTOOBF_BIN:-target/release/protoobf}"
COUNT="${SMOKE_COUNT:-64}"
CLIENT_TIMEOUT="${SMOKE_TIMEOUT:-120}"
PORT="${SMOKE_BASE_PORT:-19750}"
SEED=7
LEVEL=2

logdir=$(mktemp -d)
pids=()
cleanup() {
    status=$?
    for pid in "${pids[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    if [ "$status" -ne 0 ]; then
        echo "[smoke] failure (exit $status); server logs:" >&2
        tail -n +1 "$logdir"/*.log >&2 2>/dev/null || true
    fi
    rm -rf "$logdir"
}
trap cleanup EXIT

# Each server prints its "… on ADDR" line after binding its listener;
# polling the log avoids both a fixed-sleep race on loaded runners and
# probe connections (which would consume the --accept-limit budget).
wait_ready() { # <pattern> <log-file>
    for _ in $(seq 1 300); do
        grep -q "$1" "$2" 2>/dev/null && return 0
        sleep 0.1
    done
    echo "[smoke] timed out waiting for: $1" >&2
    return 1
}

# Static pre-flight: every configuration the chains below deploy must
# pass the plan verifier and spec linter before any process starts. A
# lint error here is a codec bug, not a deployment flake — fail fast
# with no ports, processes or timeouts in the picture. (The asymmetric
# chain profile is written here so it can be linted up front; the
# profile chain section below reuses the same file.)
profile="$logdir/chain.profile"
cat > "$profile" <<'PROFILE'
profile protoobf/1
tx builtin:dns-query
rx builtin:dns-response
key "loopback smoke shared secret"
level 2
PROFILE

for spec in dns-query http-request modbus-request; do
    "$BIN" lint "builtin:$spec" --seed $SEED --level $LEVEL \
        >"$logdir/lint-$spec.log" 2>&1 \
        || { echo "[smoke] lint failed for builtin:$spec" >&2; exit 1; }
done
"$BIN" lint --profile "$profile" >"$logdir/lint-profile.log" 2>&1 \
    || { echo "[smoke] lint failed for the chain profile" >&2; exit 1; }
echo "[smoke] lint pre-flight: all chain configurations verify clean"

for spec in dns-query http-request modbus-request; do
    p_client=$PORT p_obf=$((PORT + 1)) p_server=$((PORT + 2))
    PORT=$((PORT + 3))

    "$BIN" recv "builtin:$spec" --listen "127.0.0.1:$p_server" --accept-limit 1 \
        2>"$logdir/$spec-recv.log" &
    recv_pid=$!
    "$BIN" gateway "builtin:$spec" --mode decode --seed $SEED --level $LEVEL \
        --listen "127.0.0.1:$p_obf" --upstream "127.0.0.1:$p_server" --accept-limit 1 \
        2>"$logdir/$spec-decode.log" &
    dec_pid=$!
    "$BIN" gateway "builtin:$spec" --mode encode --seed $SEED --level $LEVEL \
        --listen "127.0.0.1:$p_client" --upstream "127.0.0.1:$p_obf" --accept-limit 1 \
        2>"$logdir/$spec-encode.log" &
    enc_pid=$!
    pids+=("$recv_pid" "$dec_pid" "$enc_pid")

    wait_ready "echo server on" "$logdir/$spec-recv.log"
    wait_ready "gateway on" "$logdir/$spec-decode.log"
    wait_ready "gateway on" "$logdir/$spec-encode.log"
    timeout "$CLIENT_TIMEOUT" "$BIN" send "builtin:$spec" \
        --connect "127.0.0.1:$p_client" --count "$COUNT" --seed 3

    # wait with multiple PIDs reports only the last one's status; loop so
    # a responder/decode-gateway failure cannot be masked.
    for pid in "$recv_pid" "$dec_pid" "$enc_pid"; do wait "$pid"; done
    echo "[smoke] $spec: $COUNT messages byte-identical through the gateway pair"
done

# The profile-driven chain: everything — including an asymmetric
# request/response split (dns-query up, dns-response back) — configured
# by copies of ONE profile file (written — and linted — in the
# pre-flight above). The gateways must print equal fingerprints; the
# responder answers each query with a response-grammar message the
# client verifies parse.
p_client=$PORT p_obf=$((PORT + 1)) p_server=$((PORT + 2))
PORT=$((PORT + 3))

"$BIN" recv --profile "$profile" --listen "127.0.0.1:$p_server" --accept-limit 1 \
    2>"$logdir/profile-recv.log" &
recv_pid=$!
"$BIN" gateway --profile "$profile" --mode decode \
    --listen "127.0.0.1:$p_obf" --upstream "127.0.0.1:$p_server" --accept-limit 1 \
    2>"$logdir/profile-decode.log" &
dec_pid=$!
"$BIN" gateway --profile "$profile" --mode encode \
    --listen "127.0.0.1:$p_client" --upstream "127.0.0.1:$p_obf" --accept-limit 1 \
    2>"$logdir/profile-encode.log" &
enc_pid=$!
pids+=("$recv_pid" "$dec_pid" "$enc_pid")

wait_ready "responder on" "$logdir/profile-recv.log"
wait_ready "gateway on" "$logdir/profile-decode.log"
wait_ready "gateway on" "$logdir/profile-encode.log"

fp_enc=$(grep -o 'fingerprint [0-9a-f]*' "$logdir/profile-encode.log" | head -1)
fp_dec=$(grep -o 'fingerprint [0-9a-f]*' "$logdir/profile-decode.log" | head -1)
if [ -z "$fp_enc" ] || [ "$fp_enc" != "$fp_dec" ]; then
    echo "[smoke] gateway fingerprints disagree: '$fp_enc' vs '$fp_dec'" >&2
    exit 1
fi
echo "[smoke] profile chain fingerprints agree: $fp_enc"

timeout "$CLIENT_TIMEOUT" "$BIN" send --profile "$profile" \
    --connect "127.0.0.1:$p_client" --count "$COUNT"

for pid in "$recv_pid" "$dec_pid" "$enc_pid"; do wait "$pid"; done
echo "[smoke] asymmetric profile chain: $COUNT query/response rounds relayed"

# The telemetry plane: an encode gateway serving --admin is scraped
# mid-run, between two client runs, with nothing but bash /dev/tcp —
# the same dependency-free access pattern a Prometheus scraper uses.
scrape() { # <port> <path>
    exec 3<>"/dev/tcp/127.0.0.1/$1"
    printf 'GET %s HTTP/1.0\r\n\r\n' "$2" >&3
    cat <&3
    exec 3<&-
}

spec=dns-query
p_client=$PORT p_obf=$((PORT + 1)) p_server=$((PORT + 2)) p_admin=$((PORT + 3))
PORT=$((PORT + 4))

"$BIN" recv "builtin:$spec" --listen "127.0.0.1:$p_server" --accept-limit 2 \
    2>"$logdir/telemetry-recv.log" &
recv_pid=$!
"$BIN" gateway "builtin:$spec" --mode decode --seed $SEED --level $LEVEL \
    --listen "127.0.0.1:$p_obf" --upstream "127.0.0.1:$p_server" --accept-limit 2 \
    2>"$logdir/telemetry-decode.log" &
dec_pid=$!
"$BIN" gateway "builtin:$spec" --mode encode --seed $SEED --level $LEVEL \
    --listen "127.0.0.1:$p_client" --upstream "127.0.0.1:$p_obf" --accept-limit 2 \
    --admin "127.0.0.1:$p_admin" 2>"$logdir/telemetry-encode.log" &
enc_pid=$!
pids+=("$recv_pid" "$dec_pid" "$enc_pid")

wait_ready "echo server on" "$logdir/telemetry-recv.log"
wait_ready "gateway on" "$logdir/telemetry-decode.log"
wait_ready "admin endpoint on" "$logdir/telemetry-encode.log"

scrape "$p_admin" /health | grep -q '^ok' \
    || { echo "[smoke] /health did not answer ok" >&2; exit 1; }

timeout "$CLIENT_TIMEOUT" "$BIN" send "builtin:$spec" \
    --connect "127.0.0.1:$p_client" --count "$COUNT" --seed 3 --quiet

# The encode gateway decodes every client request AND every upstream
# echo: the live counter must read exactly 2×COUNT after run one.
msgs=$(scrape "$p_admin" /metrics \
    | awk '$1 == "protoobf_messages_in_total" {print $2}')
expected=$((COUNT * 2))
if [ "$msgs" != "$expected" ]; then
    echo "[smoke] mid-run /metrics: protoobf_messages_in_total=$msgs, expected $expected" >&2
    exit 1
fi
scrape "$p_admin" /events | grep -q 'accept' \
    || { echo "[smoke] /events shows no accept event" >&2; exit 1; }

timeout "$CLIENT_TIMEOUT" "$BIN" send "builtin:$spec" \
    --connect "127.0.0.1:$p_client" --count "$COUNT" --seed 4

for pid in "$recv_pid" "$dec_pid" "$enc_pid"; do wait "$pid"; done
echo "[smoke] telemetry plane: live scrape saw $msgs relayed messages"

# The covert tunnel lane: a fixed file piped through a real two-process
# tunnel (client + server binaries) over the same asymmetric profile
# gateway chain, then diffed byte-for-byte. The client's stdin is held
# open through a FIFO so both endpoints stay alive mid-transfer and the
# goodput counters (payload_bytes_in/out) can be scraped live off each
# endpoint's --admin plane before EOF releases the stream.
wait_counter() { # <admin-port> <metric> <expected>
    v=
    for _ in $(seq 1 300); do
        v=$(scrape "$1" /metrics 2>/dev/null \
            | awk -v m="$2" '$1 == m {print $2}' || true)
        [ "$v" = "$3" ] && return 0
        sleep 0.1
    done
    echo "[smoke] timed out waiting for $2=$3 on port $1 (last: ${v:-none})" >&2
    return 1
}

payload="$logdir/tunnel-payload.bin"
seq -f 'covert payload line %05.0f' 1 3000 > "$payload"
payload_bytes=$(wc -c < "$payload" | tr -d ' ')

p_client=$PORT p_obf=$((PORT + 1)) p_server=$((PORT + 2))
p_admin_c=$((PORT + 3)) p_admin_s=$((PORT + 4))
PORT=$((PORT + 5))

"$BIN" tunnel --profile "$profile" --listen "127.0.0.1:$p_server" \
    --exit-on-eof --quiet --admin "127.0.0.1:$p_admin_s" \
    < /dev/null > "$logdir/tunnel-out.bin" 2>"$logdir/tunnel-server.log" &
srv_pid=$!
"$BIN" gateway --profile "$profile" --mode decode \
    --listen "127.0.0.1:$p_obf" --upstream "127.0.0.1:$p_server" --accept-limit 1 \
    2>"$logdir/tunnel-decode.log" &
dec_pid=$!
"$BIN" gateway --profile "$profile" --mode encode \
    --listen "127.0.0.1:$p_client" --upstream "127.0.0.1:$p_obf" --accept-limit 1 \
    2>"$logdir/tunnel-encode.log" &
enc_pid=$!
pids+=("$srv_pid" "$dec_pid" "$enc_pid")

wait_ready "tunnel server on" "$logdir/tunnel-server.log"
wait_ready "gateway on" "$logdir/tunnel-decode.log"
wait_ready "gateway on" "$logdir/tunnel-encode.log"

fifo="$logdir/tunnel-in.fifo"
mkfifo "$fifo"
"$BIN" tunnel --profile "$profile" --connect "127.0.0.1:$p_client" \
    --exit-on-eof --quiet --admin "127.0.0.1:$p_admin_c" \
    < "$fifo" > /dev/null 2>"$logdir/tunnel-client.log" &
cli_pid=$!
pids+=("$cli_pid")
exec 4>"$fifo" # unblocks the client's stdin open; stream stays live
wait_ready "admin endpoint on" "$logdir/tunnel-client.log"
cat "$payload" >&4

# Mid-stream, both processes still up: the client must have sourced the
# whole payload, the server must have sunk it — live goodput telemetry.
wait_counter "$p_admin_c" protoobf_payload_bytes_out_total "$payload_bytes"
wait_counter "$p_admin_s" protoobf_payload_bytes_in_total "$payload_bytes"

exec 4>&- # EOF: both stream directions complete, everything exits
for pid in "$cli_pid" "$srv_pid" "$dec_pid" "$enc_pid"; do wait "$pid"; done
cmp "$payload" "$logdir/tunnel-out.bin" || {
    echo "[smoke] tunnel output differs from the piped payload" >&2
    exit 1
}
echo "[smoke] tunnel: $payload_bytes bytes byte-identical through the covert channel"

echo "[smoke] all protocols passed"
